// Multi-threaded stress tests for the push-path index fixes and the
// concurrent worker<->PS fan-out. Built to run under ThreadSanitizer:
//   cmake -B build-tsan -S . -DOE_SANITIZE=thread
//   cmake --build build-tsan -j && ctest --test-dir build-tsan -L tsan
//
// The tests follow the synchronous training protocol (pull phase -> seal ->
// push phase, separated by barriers) because that is the concurrency the
// store promises to support: concurrent pulls with concurrent pulls,
// concurrent pushes with concurrent pushes and checkpoint requests — never
// a pull overlapping a push of the same batch.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "net/tcp.h"
#include "pmem/device.h"
#include "ps/ps_client.h"
#include "ps/ps_service.h"
#include "storage/pipelined_store.h"

namespace oe {
namespace {

using pmem::CrashFidelity;
using pmem::PmemDevice;
using pmem::PmemDeviceOptions;
using storage::EntryId;
using storage::InitializerKind;
using storage::InitializerSpec;
using storage::OptimizerKind;
using storage::PipelinedStore;
using storage::StoreConfig;

constexpr uint32_t kDim = 8;
constexpr float kLearningRate = 0.5f;
constexpr float kGrad = 1.0f;

StoreConfig StressConfig() {
  StoreConfig config;
  config.dim = kDim;
  config.optimizer.kind = OptimizerKind::kSgd;
  config.optimizer.learning_rate = kLearningRate;
  config.initializer.kind = InitializerKind::kUniform;
  config.initializer.scale = 0.1f;
  config.cache_bytes = 4 * 1024;  // tiny: forces evictions + PMem pushes
  config.maintainer_threads = 2;
  return config;
}

std::unique_ptr<PmemDevice> MakeDevice(uint64_t size = 32 << 20) {
  PmemDeviceOptions options;
  options.size_bytes = size;
  options.crash_fidelity = CrashFidelity::kStrict;
  return PmemDevice::Create(options).ValueOrDie();
}

/// The deterministic key set thread `t` works on in `batch`: a hot set all
/// threads share (same-key contention on the push spinlocks) plus a rotating
/// cold slice (cache churn: misses, evictions, PMem-resident pushes).
std::vector<EntryId> KeysFor(int thread, int batch, uint64_t universe,
                             uint64_t hot, int cold) {
  std::set<EntryId> keys;
  for (EntryId k = 0; k < hot; ++k) keys.insert(k);
  for (int j = 0; j < cold; ++j) {
    keys.insert(hot + (static_cast<uint64_t>(thread) * 31 +
                       static_cast<uint64_t>(j) * 7 +
                       static_cast<uint64_t>(batch) * 13) %
                          (universe - hot));
  }
  return {keys.begin(), keys.end()};
}

/// Replays the optimizer arithmetic serially: SGD with a constant gradient
/// is order-independent, so the concurrent store must land on exactly this.
std::vector<float> ExpectedWeights(const InitializerSpec& init, EntryId key,
                                   int pushes) {
  std::vector<float> w(kDim);
  init.Fill(key, w.data(), kDim);
  for (int p = 0; p < pushes; ++p) {
    for (uint32_t i = 0; i < kDim; ++i) w[i] -= kLearningRate * kGrad;
  }
  return w;
}

bool SameWeights(const float* got, const std::vector<float>& want) {
  for (uint32_t i = 0; i < kDim; ++i) {
    if (got[i] != want[i]) return false;
  }
  return true;
}

TEST(PipelinedStoreConcurrencyTest, ParallelPullPushCheckpointConverges) {
  constexpr int kThreads = 4;
  constexpr int kBatches = 16;
  constexpr uint64_t kUniverse = 128;
  constexpr uint64_t kHot = 8;
  constexpr int kCold = 24;

  auto device = MakeDevice();
  auto store = PipelinedStore::Create(StressConfig(), device.get())
                   .ValueOrDie();
  const InitializerSpec init = store->config().initializer;

  // Precompute every key set plus the cumulative push count before each
  // batch, so worker threads can verify pulled values without sharing
  // mutable state.
  std::vector<std::vector<std::vector<EntryId>>> keysets(kBatches + 1);
  std::vector<std::vector<int>> count_before(kBatches + 2,
                                             std::vector<int>(kUniverse, 0));
  for (int b = 1; b <= kBatches; ++b) {
    keysets[b].resize(kThreads);
    count_before[b + 1] = count_before[b];
    for (int t = 0; t < kThreads; ++t) {
      keysets[b][t] = KeysFor(t, b, kUniverse, kHot, kCold);
      for (EntryId key : keysets[b][t]) count_before[b + 1][key]++;
    }
  }

  Barrier barrier(kThreads);
  std::atomic<int> pull_mismatches{0};
  std::atomic<int> op_failures{0};

  auto worker = [&](int t) {
    std::vector<float> weights;
    std::vector<float> grads;
    for (int b = 1; b <= kBatches; ++b) {
      const auto& keys = keysets[b][t];
      weights.resize(keys.size() * kDim);

      barrier.ArriveAndWait();
      if (!store->Pull(keys.data(), keys.size(), b, weights.data()).ok()) {
        op_failures.fetch_add(1);
      }
      for (size_t j = 0; j < keys.size(); ++j) {
        const auto want =
            ExpectedWeights(init, keys[j], count_before[b][keys[j]]);
        if (!SameWeights(weights.data() + j * kDim, want)) {
          pull_mismatches.fetch_add(1);
        }
      }

      if (barrier.ArriveAndWait()) store->FinishPullPhase(b);
      barrier.ArriveAndWait();

      // The leader races a checkpoint request against the push phase.
      if (t == 0 && b % 3 == 0) {
        if (!store->RequestCheckpoint(b).ok()) op_failures.fetch_add(1);
      }
      grads.assign(keys.size() * kDim, kGrad);
      if (!store->Push(keys.data(), keys.size(), grads.data(), b).ok()) {
        op_failures.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(op_failures.load(), 0);
  EXPECT_EQ(pull_mismatches.load(), 0);
  ASSERT_TRUE(store->DrainCheckpoints().ok());
  EXPECT_GT(store->PublishedCheckpoint(), 0u);

  // Every touched key must hold exactly init - lr * total_pushes: any lost
  // update (stale slot read, torn pointer, dropped COW) shows up here.
  const auto& final_count = count_before[kBatches + 1];
  size_t touched = 0;
  for (EntryId key = 0; key < kUniverse; ++key) {
    if (final_count[key] == 0) continue;
    ++touched;
    auto got = store->Peek(key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    const std::vector<float> values = std::move(got).ValueOrDie();
    const auto want = ExpectedWeights(init, key, final_count[key]);
    EXPECT_TRUE(SameWeights(values.data(), want))
        << "key " << key << " after " << final_count[key] << " pushes";
  }
  EXPECT_EQ(store->EntryCount(), touched);
}

// The sharded-store stress test: concurrent pullers + pushers + checkpoint
// requests across many shards with several maintainer threads draining
// disjoint shards in parallel, verified against a serial replay; then a
// restart_test-style crash + recovery back to the mid-stream published
// checkpoint, and one more training batch on the recovered store.
TEST(PipelinedStoreConcurrencyTest, ShardedStoreStressAndMidStreamRecovery) {
  constexpr int kThreads = 4;
  constexpr int kBatches = 15;
  constexpr uint64_t kUniverse = 256;
  constexpr uint64_t kHot = 8;
  constexpr int kCold = 24;

  auto device = MakeDevice();
  StoreConfig config = StressConfig();
  config.store_shards = 8;
  config.maintainer_threads = 4;
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  const InitializerSpec init = store->config().initializer;

  std::vector<std::vector<std::vector<EntryId>>> keysets(kBatches + 1);
  std::vector<std::vector<int>> count_before(kBatches + 2,
                                             std::vector<int>(kUniverse, 0));
  for (int b = 1; b <= kBatches; ++b) {
    keysets[b].resize(kThreads);
    count_before[b + 1] = count_before[b];
    for (int t = 0; t < kThreads; ++t) {
      keysets[b][t] = KeysFor(t, b, kUniverse, kHot, kCold);
      for (EntryId key : keysets[b][t]) count_before[b + 1][key]++;
    }
  }

  Barrier barrier(kThreads);
  std::atomic<int> pull_mismatches{0};
  std::atomic<int> op_failures{0};

  auto worker = [&](int t) {
    std::vector<float> weights;
    std::vector<float> grads;
    for (int b = 1; b <= kBatches; ++b) {
      const auto& keys = keysets[b][t];
      weights.resize(keys.size() * kDim);

      barrier.ArriveAndWait();
      if (!store->Pull(keys.data(), keys.size(), b, weights.data()).ok()) {
        op_failures.fetch_add(1);
      }
      for (size_t j = 0; j < keys.size(); ++j) {
        const auto want =
            ExpectedWeights(init, keys[j], count_before[b][keys[j]]);
        if (!SameWeights(weights.data() + j * kDim, want)) {
          pull_mismatches.fetch_add(1);
        }
      }

      if (barrier.ArriveAndWait()) store->FinishPullPhase(b);
      barrier.ArriveAndWait();

      // The leader races checkpoint requests against the push phase and
      // the maintainers' cross-shard acknowledgement sweeps.
      if (t == 0 && b % 3 == 0) {
        if (!store->RequestCheckpoint(b).ok()) op_failures.fetch_add(1);
      }
      grads.assign(keys.size() * kDim, kGrad);
      if (!store->Push(keys.data(), keys.size(), grads.data(), b).ok()) {
        op_failures.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(op_failures.load(), 0);
  EXPECT_EQ(pull_mismatches.load(), 0);
  store->WaitMaintenance(kBatches);

  // Every touched key must hold exactly init - lr * total_pushes even with
  // maintainers flushing/evicting concurrently across shards.
  const auto& final_count = count_before[kBatches + 1];
  size_t touched = 0;
  for (EntryId key = 0; key < kUniverse; ++key) {
    if (final_count[key] == 0) continue;
    ++touched;
    auto got = store->Peek(key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    const std::vector<float> values = std::move(got).ValueOrDie();
    const auto want = ExpectedWeights(init, key, final_count[key]);
    EXPECT_TRUE(SameWeights(values.data(), want))
        << "key " << key << " after " << final_count[key] << " pushes";
  }
  EXPECT_EQ(store->EntryCount(), touched);

  // Some checkpoint must have published mid-stream via eviction pressure
  // (4 KiB cache, 200+ distinct keys per batch) — no DrainCheckpoints here.
  const uint64_t cp = store->PublishedCheckpoint();
  ASSERT_GT(cp, 0u);
  ASSERT_EQ(cp % 3, 0u);
  ASSERT_LE(cp, static_cast<uint64_t>(kBatches));

  // Crash and recover: the store must land exactly on the published
  // checkpoint's state — batch `cp` applied in full, nothing newer.
  device->SimulateCrash();
  ASSERT_TRUE(store->RecoverFromCrash().ok());
  EXPECT_EQ(store->PublishedCheckpoint(), cp);
  const auto& count_at_cp = count_before[cp + 1];
  size_t expected_entries = 0;
  for (EntryId key = 0; key < kUniverse; ++key) {
    if (count_at_cp[key] == 0) {
      EXPECT_FALSE(store->Peek(key).ok()) << "key " << key;
      continue;
    }
    ++expected_entries;
    auto got = store->Peek(key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    const std::vector<float> values = std::move(got).ValueOrDie();
    const auto want = ExpectedWeights(init, key, count_at_cp[key]);
    EXPECT_TRUE(SameWeights(values.data(), want))
        << "key " << key << " after " << count_at_cp[key] << " pushes";
  }
  EXPECT_EQ(store->EntryCount(), expected_entries);

  // Training continues on the recovered store.
  const uint64_t next = kBatches + 1;
  std::vector<EntryId> keys(kHot);
  for (EntryId k = 0; k < kHot; ++k) keys[k] = k;
  std::vector<float> weights(keys.size() * kDim);
  ASSERT_TRUE(
      store->Pull(keys.data(), keys.size(), next, weights.data()).ok());
  store->FinishPullPhase(next);
  std::vector<float> grads(keys.size() * kDim, kGrad);
  ASSERT_TRUE(
      store->Push(keys.data(), keys.size(), grads.data(), next).ok());
  for (EntryId key : keys) {
    const auto got = store->Peek(key).ValueOrDie();
    const auto want = ExpectedWeights(init, key, count_at_cp[key] + 1);
    EXPECT_TRUE(SameWeights(got.data(), want)) << "key " << key;
  }
}

// The frequency-aware policy under full concurrency: skewed pulls, racing
// pushes and parallel maintainers exercising the sketch, the admission
// filter and pin/unpin bookkeeping (all under the shard write lock — TSan
// verifies that claim). The shared hot head must end the run DRAM-resident
// and pinned, and convergence must be bit-exact as for plain LRU.
TEST(PipelinedStoreConcurrencyTest, FreqPolicyStressKeepsHotHeadPinned) {
  constexpr int kThreads = 4;
  constexpr int kBatches = 20;
  constexpr uint64_t kUniverse = 256;
  constexpr uint64_t kHot = 8;
  constexpr int kCold = 24;

  auto device = MakeDevice();
  StoreConfig config = StressConfig();
  config.cache_policy = storage::CachePolicy::kFreqAware;
  config.store_shards = 8;
  config.maintainer_threads = 4;
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  const InitializerSpec init = store->config().initializer;

  std::vector<std::vector<std::vector<EntryId>>> keysets(kBatches + 1);
  std::vector<std::vector<int>> count_before(kBatches + 2,
                                             std::vector<int>(kUniverse, 0));
  for (int b = 1; b <= kBatches; ++b) {
    keysets[b].resize(kThreads);
    count_before[b + 1] = count_before[b];
    for (int t = 0; t < kThreads; ++t) {
      keysets[b][t] = KeysFor(t, b, kUniverse, kHot, kCold);
      for (EntryId key : keysets[b][t]) count_before[b + 1][key]++;
    }
  }

  Barrier barrier(kThreads);
  std::atomic<int> pull_mismatches{0};
  std::atomic<int> op_failures{0};

  auto worker = [&](int t) {
    std::vector<float> weights;
    std::vector<float> grads;
    for (int b = 1; b <= kBatches; ++b) {
      const auto& keys = keysets[b][t];
      weights.resize(keys.size() * kDim);

      barrier.ArriveAndWait();
      if (!store->Pull(keys.data(), keys.size(), b, weights.data()).ok()) {
        op_failures.fetch_add(1);
      }
      for (size_t j = 0; j < keys.size(); ++j) {
        const auto want =
            ExpectedWeights(init, keys[j], count_before[b][keys[j]]);
        if (!SameWeights(weights.data() + j * kDim, want)) {
          pull_mismatches.fetch_add(1);
        }
      }

      if (barrier.ArriveAndWait()) store->FinishPullPhase(b);
      barrier.ArriveAndWait();

      if (t == 0 && b % 3 == 0) {
        if (!store->RequestCheckpoint(b).ok()) op_failures.fetch_add(1);
      }
      grads.assign(keys.size() * kDim, kGrad);
      if (!store->Push(keys.data(), keys.size(), grads.data(), b).ok()) {
        op_failures.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(op_failures.load(), 0);
  EXPECT_EQ(pull_mismatches.load(), 0);
  store->WaitMaintenance(kBatches);

  // Bit-exact convergence: admission rejects and pinning must never lose
  // an update (rejected keys still apply pushes PMem-side).
  const auto& final_count = count_before[kBatches + 1];
  size_t touched = 0;
  for (EntryId key = 0; key < kUniverse; ++key) {
    if (final_count[key] == 0) continue;
    ++touched;
    auto got = store->Peek(key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    const std::vector<float> values = std::move(got).ValueOrDie();
    const auto want = ExpectedWeights(init, key, final_count[key]);
    EXPECT_TRUE(SameWeights(values.data(), want))
        << "key " << key << " after " << final_count[key] << " pushes";
  }
  EXPECT_EQ(store->EntryCount(), touched);

  // The shared hot head was touched by every thread in every batch: it must
  // have accumulated frequency far past the pin threshold and survived all
  // eviction pressure from the rotating cold slices.
  for (EntryId key = 0; key < kHot; ++key) {
    EXPECT_TRUE(store->IsDramCached(key)) << "hot key " << key << " evicted";
  }
  EXPECT_GT(store->PinnedEntries(), 0u);
  EXPECT_GT(store->stats().admission_rejects.load(), 0u);
}

TEST(TcpClusterConcurrencyTest, MultiClientFanOutConverges) {
  constexpr int kNodes = 4;
  constexpr int kThreads = 4;
  constexpr int kBatches = 6;
  constexpr uint64_t kUniverse = 160;
  constexpr uint64_t kHot = 8;
  constexpr int kCold = 24;

  std::vector<std::unique_ptr<PmemDevice>> devices;
  std::vector<std::unique_ptr<PipelinedStore>> stores;
  std::vector<std::unique_ptr<ps::PsService>> services;
  std::vector<std::unique_ptr<net::TcpServer>> servers;
  net::TcpTransport transport;
  for (int i = 0; i < kNodes; ++i) {
    devices.push_back(MakeDevice());
    stores.push_back(
        PipelinedStore::Create(StressConfig(), devices.back().get())
            .ValueOrDie());
    services.push_back(std::make_unique<ps::PsService>(stores.back().get()));
    servers.push_back(
        net::TcpServer::Start(0, services.back()->AsHandler()).ValueOrDie());
    transport.AddNode(static_cast<net::NodeId>(i), "127.0.0.1",
                      servers.back()->port());
  }
  const InitializerSpec init = StressConfig().initializer;

  std::vector<std::vector<std::vector<EntryId>>> keysets(kBatches + 1);
  std::vector<std::vector<int>> count_before(kBatches + 2,
                                             std::vector<int>(kUniverse, 0));
  for (int b = 1; b <= kBatches; ++b) {
    keysets[b].resize(kThreads);
    count_before[b + 1] = count_before[b];
    for (int t = 0; t < kThreads; ++t) {
      keysets[b][t] = KeysFor(t, b, kUniverse, kHot, kCold);
      for (EntryId key : keysets[b][t]) count_before[b + 1][key]++;
    }
  }

  Barrier barrier(kThreads);
  std::atomic<int> pull_mismatches{0};
  std::atomic<int> op_failures{0};

  auto worker = [&](int t) {
    // One client per worker over the shared transport, as in SyncTrainer.
    ps::PsClient client(&transport, kNodes, kDim);
    std::vector<float> weights;
    std::vector<float> grads;
    for (int b = 1; b <= kBatches; ++b) {
      const auto& keys = keysets[b][t];
      weights.resize(keys.size() * kDim);

      barrier.ArriveAndWait();
      if (!client.Pull(keys.data(), keys.size(), b, weights.data()).ok()) {
        op_failures.fetch_add(1);
      }
      for (size_t j = 0; j < keys.size(); ++j) {
        const auto want =
            ExpectedWeights(init, keys[j], count_before[b][keys[j]]);
        if (!SameWeights(weights.data() + j * kDim, want)) {
          pull_mismatches.fetch_add(1);
        }
      }

      if (barrier.ArriveAndWait()) {
        if (!client.FinishPullPhase(b).ok()) op_failures.fetch_add(1);
      }
      barrier.ArriveAndWait();

      if (t == 0 && b % 2 == 0) {
        if (!client.RequestCheckpoint(b).ok()) op_failures.fetch_add(1);
      }
      grads.assign(keys.size() * kDim, kGrad);
      if (!client.Push(keys.data(), keys.size(), grads.data(), b).ok()) {
        op_failures.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(op_failures.load(), 0);
  EXPECT_EQ(pull_mismatches.load(), 0);

  ps::PsClient client(&transport, kNodes, kDim);
  ASSERT_TRUE(client.DrainCheckpoints().ok());

  const auto& final_count = count_before[kBatches + 1];
  uint64_t touched = 0;
  for (EntryId key = 0; key < kUniverse; ++key) {
    if (final_count[key] == 0) continue;
    ++touched;
    auto got = client.Peek(key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    const std::vector<float> values = std::move(got).ValueOrDie();
    const auto want = ExpectedWeights(init, key, final_count[key]);
    EXPECT_TRUE(SameWeights(values.data(), want))
        << "key " << key << " after " << final_count[key] << " pushes";
  }
  EXPECT_EQ(client.TotalEntries().ValueOrDie(), touched);
}

}  // namespace
}  // namespace oe

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/openembedding.h"

namespace oe {
namespace {

OpenEmbeddingOptions SmallOptions() {
  OpenEmbeddingOptions options;
  options.embedding_dim = 8;
  options.num_shards = 2;
  options.optimizer.learning_rate = 0.5f;
  options.cache_bytes_per_shard = 16 * 1024;
  options.pmem_bytes_per_shard = 32ULL << 20;
  return options;
}

TEST(OpenEmbeddingTest, QuickstartFlow) {
  auto oe = OpenEmbedding::Create(SmallOptions()).ValueOrDie();
  std::vector<uint64_t> keys = {1, 2, 3, 4};
  std::vector<float> weights(keys.size() * 8);
  ASSERT_TRUE(oe->Pull(keys.data(), keys.size(), 1, weights.data()).ok());
  ASSERT_TRUE(oe->FinishPullPhase(1).ok());
  std::vector<float> grads(keys.size() * 8, 1.0f);
  ASSERT_TRUE(oe->Push(keys.data(), keys.size(), grads.data(), 1).ok());
  auto after = oe->Peek(2).ValueOrDie();
  EXPECT_NEAR(after[0], weights[8] - 0.5f, 1e-5);
  EXPECT_EQ(oe->Size().ValueOrDie(), 4u);
}

TEST(OpenEmbeddingTest, CheckpointCrashRecover) {
  auto oe = OpenEmbedding::Create(SmallOptions()).ValueOrDie();
  std::vector<uint64_t> keys(16);
  std::iota(keys.begin(), keys.end(), 0);
  std::vector<float> weights(keys.size() * 8);
  std::vector<float> grads(keys.size() * 8, 0.5f);

  ASSERT_TRUE(oe->Pull(keys.data(), keys.size(), 1, weights.data()).ok());
  ASSERT_TRUE(oe->FinishPullPhase(1).ok());
  ASSERT_TRUE(oe->Push(keys.data(), keys.size(), grads.data(), 1).ok());
  ASSERT_TRUE(oe->Checkpoint(1).ok());
  ASSERT_TRUE(oe->Flush().ok());
  EXPECT_EQ(oe->LatestCheckpoint().ValueOrDie(), 1u);
  auto expected = oe->Peek(5).ValueOrDie();

  // Post-checkpoint batch, then crash.
  ASSERT_TRUE(oe->Pull(keys.data(), keys.size(), 2, weights.data()).ok());
  ASSERT_TRUE(oe->FinishPullPhase(2).ok());
  ASSERT_TRUE(oe->Push(keys.data(), keys.size(), grads.data(), 2).ok());
  oe->SimulateCrash();
  ASSERT_TRUE(oe->Recover().ok());

  EXPECT_EQ(oe->LatestCheckpoint().ValueOrDie(), 1u);
  EXPECT_EQ(oe->Peek(5).ValueOrDie(), expected);
}

TEST(OpenEmbeddingTest, BaselineEnginesWork) {
  for (auto engine :
       {storage::StoreKind::kDram, storage::StoreKind::kOriCache,
        storage::StoreKind::kPmemHash}) {
    auto options = SmallOptions();
    options.engine = engine;
    auto oe = OpenEmbedding::Create(options).ValueOrDie();
    uint64_t key = 9;
    std::vector<float> w(8);
    ASSERT_TRUE(oe->Pull(&key, 1, 1, w.data()).ok());
    std::vector<float> g(8, 1.0f);
    ASSERT_TRUE(oe->Push(&key, 1, g.data(), 1).ok());
    EXPECT_TRUE(oe->Peek(key).ok());
  }
}

TEST(OpenEmbeddingTest, AdaGradOptimizerEndToEnd) {
  auto options = SmallOptions();
  options.optimizer.kind = storage::OptimizerKind::kAdaGrad;
  options.optimizer.learning_rate = 0.1f;
  auto oe = OpenEmbedding::Create(options).ValueOrDie();
  uint64_t key = 3;
  std::vector<float> w(8);
  ASSERT_TRUE(oe->Pull(&key, 1, 1, w.data()).ok());
  ASSERT_TRUE(oe->FinishPullPhase(1).ok());
  std::vector<float> g(8, 2.0f);
  ASSERT_TRUE(oe->Push(&key, 1, g.data(), 1).ok());
  auto after = oe->Peek(key).ValueOrDie();
  // AdaGrad first step: w -= lr * g / sqrt(g^2) = lr (approximately).
  EXPECT_NEAR(after[0], w[0] - 0.1f, 1e-4);
}

}  // namespace
}  // namespace oe

// Systematic crash-consistency suite for PipelinedStore, driven by the
// pmem fault-injection hooks (pmem/fault_plan.h) through the CrashSim
// harness. Every persist event of a multi-checkpoint training run is a
// crash point; each one must recover to a batch-consistent prefix
// (Algorithm 2 of the paper). See DESIGN.md "Fault-injection points".

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_util.h"
#include "testing/crash_sim.h"

namespace oe::testing {
namespace {

CrashSimOptions BaseOptions(uint32_t shards) {
  CrashSimOptions options;
  options.store = oe::test::SmallConfig();
  options.store.store_shards = shards;
  return options;
}

void ExpectAllOk(const CrashSim& sim,
                 const std::vector<CrashPointResult>& results) {
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& res = results[i];
    std::string site = res.fault.event != 0 && res.fault.event <= sim.event_sites().size()
                           ? sim.event_sites()[res.fault.event - 1]
                           : "<none>";
    EXPECT_TRUE(res.ok()) << "fault '" << res.fault.kind << "' at event "
                          << res.fault.event << " (site " << site
                          << "): " << res.violation;
  }
}

// Crash once at every persist event of a 3-checkpoint run and verify the
// full recovery contract at each point.
void EnumerateAllWithOptions(const CrashSimOptions& options) {
  CrashSim sim(options);
  ASSERT_TRUE(sim.CountEvents().ok());
  ASSERT_GE(sim.requested_checkpoints().size(), 3u);
  ASSERT_GT(sim.total_events(), 0u);

  std::vector<CrashPointResult> results;
  ASSERT_TRUE(sim.EnumerateAll(&results).ok());
  ASSERT_EQ(results.size(), sim.total_events());  // every event covered
  ExpectAllOk(sim, results);

  // Once the final checkpoint's root-publish has persisted, every later
  // crash must recover to exactly that checkpoint.
  const uint64_t last_publish = sim.FindEvent(
      "ckpt-publish", static_cast<int>(sim.requested_checkpoints().size()));
  ASSERT_GT(last_publish, 0u);
  for (uint64_t e = last_publish + 1; e <= sim.total_events(); ++e) {
    EXPECT_EQ(results[e - 1].published, sim.requested_checkpoints().back())
        << "crash after the final publish (event " << e
        << ") lost the checkpoint";
  }
  // And a crash before any publish recovers the empty model.
  const uint64_t first_publish = sim.FindEvent("ckpt-publish", 1);
  ASSERT_GT(first_publish, 1u);
  EXPECT_EQ(results[first_publish - 2].published, 0u);
}

void EnumerateAllAtShards(uint32_t shards) {
  EnumerateAllWithOptions(BaseOptions(shards));
}

TEST(CrashSimTest, EnumerateAllSingleShard) { EnumerateAllAtShards(1); }

TEST(CrashSimTest, EnumerateAllSixteenShards) { EnumerateAllAtShards(16); }

// The PMem-resident bucket-hash index adds its own persist sites
// (kv-format / kv-upsert / kv-erase / kv-clear) on top of the slab
// allocator's; every one of them must be a safe crash point. Recovery never
// trusts the engine's PMem contents — it frees the bucket extents and
// rebuilds from the record scan — so crashing mid-bucket-write must be
// indistinguishable from crashing anywhere else.
void EnumerateAllPmemBucketAtShards(uint32_t shards) {
  CrashSimOptions options = BaseOptions(shards);
  options.store.kv_engine = oe::storage::KvEngineKind::kPmemBucket;
  options.store.kv_pmem_buckets = 64;  // fits the 4MB sim device x16 shards
  EnumerateAllWithOptions(options);
}

TEST(CrashSimTest, EnumerateAllPmemBucketSingleShard) {
  EnumerateAllPmemBucketAtShards(1);
}

TEST(CrashSimTest, EnumerateAllPmemBucketSixteenShards) {
  EnumerateAllPmemBucketAtShards(16);
}

// Legacy configuration: per-record pool allocations (no slab) indexed by the
// std::unordered_map engine — the pre-KvEngine persist schedule. Kept
// enumerable so the old write-back path (alloc-header/commit-payload/
// commit-header) stays a verified crash surface.
TEST(CrashSimTest, EnumerateAllLegacyPoolUnorderedMap) {
  CrashSimOptions options = BaseOptions(1);
  options.store.slab_alloc = false;
  options.store.kv_engine = oe::storage::KvEngineKind::kUnorderedMap;
  EnumerateAllWithOptions(options);
}

// Crash-point enumeration under the frequency-aware cache policy with a
// cache small enough that the admission filter and the windowed victim
// scan fire at every maintenance chunk. The policy changes *which* entries
// are DRAM-resident (and thus the flush/eviction persist schedule) at each
// crash point, but every recovery invariant must hold unchanged.
TEST(CrashSimTest, EnumerateAllWithFreqPolicy) {
  CrashSimOptions options = BaseOptions(4);
  options.store.cache_policy = oe::storage::CachePolicy::kFreqAware;
  options.store.cache_bytes = 512;     // a handful of entries: constant churn
  options.store.hot_pin_min_freq = 2;  // pin early in the short workload
  CrashSim sim(options);
  ASSERT_TRUE(sim.CountEvents().ok());
  ASSERT_GT(sim.total_events(), 0u);
  std::vector<CrashPointResult> results;
  ASSERT_TRUE(sim.EnumerateAll(&results).ok());
  ASSERT_EQ(results.size(), sim.total_events());
  ExpectAllOk(sim, results);
}

// Randomized schedules (crash or torn write at a random event) must hold
// the same invariants. The seed is overridable via OE_TEST_SEED and is
// attached to every failure message for reproduction.
TEST(CrashSimTest, RandomizedTearAndCrashSchedules) {
  const uint64_t seed = oe::test::TestSeed(20260806);
  SCOPED_TRACE("OE_TEST_SEED=" + std::to_string(seed));
  CrashSim sim(BaseOptions(4));
  ASSERT_TRUE(sim.CountEvents().ok());
  std::vector<CrashPointResult> results;
  ASSERT_TRUE(sim.RunRandomSchedule(seed, /*rounds=*/12, &results).ok());
  ASSERT_EQ(results.size(), 12u);
  ExpectAllOk(sim, results);
  bool tore = false;
  for (const auto& res : results) tore |= res.fault.kind == 't';
  EXPECT_TRUE(tore) << "schedule never drew a torn write; adjust the seed";
}

// Tearing the checkpoint-publish root store to a zero-line prefix means the
// new Checkpointed Batch ID never reaches PMem: recovery lands on the
// previous checkpoint, and that is still a valid prefix.
TEST(CrashSimTest, TornCheckpointPublishFallsBackOneCheckpoint) {
  CrashSim sim(BaseOptions(1));
  ASSERT_TRUE(sim.CountEvents().ok());
  const auto& requested = sim.requested_checkpoints();
  ASSERT_GE(requested.size(), 2u);
  pmem::FaultPlan plan;
  plan.tear_at = sim.FindEvent("ckpt-publish", 2);
  plan.tear_lines = 0;
  ASSERT_GT(plan.tear_at, 0u);
  auto res = sim.RunPlan(plan);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().fault.kind, 't');
  EXPECT_TRUE(res.value().ok()) << res.value().violation;
  EXPECT_EQ(res.value().published, requested[0]);
}

// Dropping the flush that persists a checkpoint-GC free is benign: the
// stale record is resurrected by the crash, but recovery's newest-wins
// rescan supersedes it. The store must tolerate this without help.
TEST(CrashSimTest, DroppedCheckpointGcFreeIsBenign) {
  CrashSim sim(BaseOptions(1));
  ASSERT_TRUE(sim.CountEvents().ok());
  pmem::FaultPlan plan;
  plan.drop_at = sim.FindEvent("ckpt-gc", 1);
  ASSERT_GT(plan.drop_at, 0u);
  auto res = sim.RunPlan(plan);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().fault.kind, 'd');
  EXPECT_TRUE(res.value().ok()) << res.value().violation;
}

// Meta-test: the harness must *detect* a genuinely missed persist. Dropping
// the payload-commit flush of the run's final write-back leaves a record
// whose contents roll back at the crash — verification has to flag it.
// This is what distinguishes the suite from one that trivially passes.
void ExpectDroppedWriteBackDetected(const CrashSimOptions& options,
                                    const std::string& commit_site) {
  CrashSim sim(options);
  ASSERT_TRUE(sim.CountEvents().ok());
  int commits = 0;
  for (const auto& site : sim.event_sites()) {
    commits += site.find(commit_site) != std::string::npos;
  }
  ASSERT_GT(commits, 0);
  pmem::FaultPlan plan;
  plan.drop_at = sim.FindEvent(commit_site, commits);
  ASSERT_GT(plan.drop_at, 0u);
  auto res = sim.RunPlan(plan);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res.value().fault.triggered);
  EXPECT_EQ(res.value().fault.kind, 'd');
  EXPECT_FALSE(res.value().ok())
      << "a dropped payload persist went undetected by the invariant checks";
}

// Default config: records come from the slab allocator, whose payload
// persist is the "slab-commit" leg of the two-persist protocol.
TEST(CrashSimTest, DroppedWriteBackCommitIsDetected) {
  ExpectDroppedWriteBackDetected(BaseOptions(1), "write-back/slab-commit");
}

// Legacy config: per-record pool allocations persist the payload under
// "commit-payload". The detector must keep working for that path too.
TEST(CrashSimTest, DroppedWriteBackCommitIsDetectedLegacyPool) {
  CrashSimOptions options = BaseOptions(1);
  options.store.slab_alloc = false;
  options.store.kv_engine = oe::storage::KvEngineKind::kUnorderedMap;
  ExpectDroppedWriteBackDetected(options, "write-back/commit-payload");
}

}  // namespace
}  // namespace oe::testing

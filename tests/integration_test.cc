// Cluster-level integration soaks: repeated crash/recover/train cycles,
// adversarial device fidelity, and end-to-end consistency between the
// distributed client view and per-shard state.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "ps/ps_cluster.h"

namespace oe::ps {
namespace {

using storage::EntryId;
using storage::StoreKind;

constexpr uint32_t kDim = 8;

ClusterOptions SoakOptions(pmem::CrashFidelity fidelity) {
  ClusterOptions options;
  options.num_nodes = 3;
  options.kind = StoreKind::kPipelined;
  options.store.dim = kDim;
  options.store.optimizer.kind = storage::OptimizerKind::kAdaGrad;
  options.store.optimizer.learning_rate = 0.1f;
  options.store.cache_bytes = 8 * 1024;  // heavy eviction traffic
  options.pmem_bytes_per_node = 64ULL << 20;
  options.crash_fidelity = fidelity;
  return options;
}

// Runs one synchronous batch over the cluster and mirrors it in `model`.
void RunBatch(PsClient* client, Random* rng, uint64_t batch,
              std::map<EntryId, std::vector<float>>* model,
              const storage::StoreConfig& config) {
  std::vector<EntryId> keys;
  for (int i = 0; i < 32; ++i) keys.push_back(rng->Uniform(500));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<float> weights(keys.size() * kDim);
  ASSERT_TRUE(client->Pull(keys.data(), keys.size(), batch, weights.data())
                  .ok());
  ASSERT_TRUE(client->FinishPullPhase(batch).ok());
  std::vector<float> grads(keys.size() * kDim);
  for (auto& g : grads) g = rng->UniformFloat(-0.5f, 0.5f);
  ASSERT_TRUE(
      client->Push(keys.data(), keys.size(), grads.data(), batch).ok());

  // Mirror in the reference model (AdaGrad).
  for (size_t i = 0; i < keys.size(); ++i) {
    auto& entry = (*model)[keys[i]];
    if (entry.empty()) {
      entry.resize(2 * kDim, 0.0f);  // weights ++ accumulators
      config.initializer.Fill(keys[i], entry.data(), kDim);
    }
    for (uint32_t d = 0; d < kDim; ++d) {
      const float g = grads[i * kDim + d];
      float& acc = entry[kDim + d];
      acc += g * g;
      entry[d] -= config.optimizer.learning_rate * g /
                  (std::sqrt(acc) + config.optimizer.epsilon);
    }
  }
}

class CrashCycleTest
    : public ::testing::TestWithParam<pmem::CrashFidelity> {};

TEST_P(CrashCycleTest, ThreeCrashRecoverCyclesStayConsistent) {
  auto cluster = PsCluster::Create(SoakOptions(GetParam())).ValueOrDie();
  auto& client = cluster->client();
  Random rng(2026);
  std::map<EntryId, std::vector<float>> model;
  std::map<EntryId, std::vector<float>> model_at_checkpoint;

  uint64_t batch = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    // Train 8 batches, checkpoint after the 8th.
    for (int b = 0; b < 8; ++b) {
      ++batch;
      RunBatch(&client, &rng, batch, &model, cluster->options().store);
    }
    ASSERT_TRUE(client.RequestCheckpoint(batch).ok());
    ASSERT_TRUE(client.DrainCheckpoints().ok());
    model_at_checkpoint = model;
    const uint64_t checkpoint_batch = batch;

    // Two doomed batches, then crash.
    for (int b = 0; b < 2; ++b) {
      ++batch;
      RunBatch(&client, &rng, batch, &model, cluster->options().store);
    }
    cluster->SimulateCrashAll();
    ASSERT_TRUE(client.Recover().ok());
    ASSERT_EQ(client.ClusterCheckpoint().ValueOrDie(), checkpoint_batch);

    // The cluster state equals the reference model at the checkpoint.
    model = model_at_checkpoint;
    batch = checkpoint_batch;
    ASSERT_EQ(client.TotalEntries().ValueOrDie(), model.size())
        << "cycle " << cycle;
    for (const auto& [key, expected] : model) {
      auto got = client.Peek(key);
      ASSERT_TRUE(got.ok()) << "cycle " << cycle << " key " << key;
      for (uint32_t d = 0; d < kDim; ++d) {
        ASSERT_NEAR(got.value()[d], expected[d], 1e-4)
            << "cycle " << cycle << " key " << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fidelity, CrashCycleTest,
    ::testing::Values(pmem::CrashFidelity::kStrict,
                      pmem::CrashFidelity::kAdversarial),
    [](const auto& info) {
      return info.param == pmem::CrashFidelity::kStrict ? "Strict"
                                                        : "Adversarial";
    });

TEST(ClusterConsistencyTest, ShardViewsMatchClientView) {
  auto cluster =
      PsCluster::Create(SoakOptions(pmem::CrashFidelity::kNone)).ValueOrDie();
  auto& client = cluster->client();
  Random rng(11);
  std::map<EntryId, std::vector<float>> model;
  for (uint64_t batch = 1; batch <= 10; ++batch) {
    RunBatch(&client, &rng, batch, &model, cluster->options().store);
  }
  // Per-shard entry counts sum to the client view, and every key lives on
  // exactly the shard the router names.
  uint64_t total = 0;
  for (uint32_t node = 0; node < cluster->num_nodes(); ++node) {
    total += cluster->store(node)->EntryCount();
  }
  EXPECT_EQ(total, client.TotalEntries().ValueOrDie());
  for (const auto& [key, unused] : model) {
    const uint32_t owner = client.router().NodeFor(key);
    EXPECT_TRUE(cluster->store(owner)->Peek(key).ok()) << key;
    for (uint32_t node = 0; node < cluster->num_nodes(); ++node) {
      if (node != owner) {
        EXPECT_FALSE(cluster->store(node)->Peek(key).ok()) << key;
      }
    }
  }
}

TEST(ClusterConsistencyTest, CheckpointWaitsForSlowestShard) {
  // A cluster checkpoint only exists once every shard published it: drive
  // one shard's publication while the others lag, and verify the cluster
  // view stays at the minimum.
  auto cluster =
      PsCluster::Create(SoakOptions(pmem::CrashFidelity::kNone)).ValueOrDie();
  auto& client = cluster->client();
  std::vector<EntryId> keys(96);
  std::iota(keys.begin(), keys.end(), 0);
  std::vector<float> w(keys.size() * kDim);
  std::vector<float> g(keys.size() * kDim, 0.1f);
  ASSERT_TRUE(client.Pull(keys.data(), keys.size(), 1, w.data()).ok());
  ASSERT_TRUE(client.FinishPullPhase(1).ok());
  ASSERT_TRUE(client.Push(keys.data(), keys.size(), g.data(), 1).ok());
  ASSERT_TRUE(client.RequestCheckpoint(1).ok());
  // Pending everywhere: cluster checkpoint is still 0.
  EXPECT_EQ(client.ClusterCheckpoint().ValueOrDie(), 0u);
  // Drain only shard 0.
  ASSERT_TRUE(cluster->store(0)->DrainCheckpoints().ok());
  EXPECT_EQ(cluster->store(0)->PublishedCheckpoint(), 1u);
  EXPECT_EQ(client.ClusterCheckpoint().ValueOrDie(), 0u);  // min over shards
  // Drain the rest: now the cluster checkpoint exists.
  ASSERT_TRUE(client.DrainCheckpoints().ok());
  EXPECT_EQ(client.ClusterCheckpoint().ValueOrDie(), 1u);
}

}  // namespace
}  // namespace oe::ps

// KvEngine conformance suite: every engine kind (std::unordered_map
// baseline, F14-style flat DRAM table, PetHash-style PMem bucket hash)
// must present identical index semantics to the pipelined store. The same
// battery runs against each kind; engine-specific behavior (fixed
// capacity, persist sites, PMem residency) is tested separately.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/tagged_ptr.h"
#include "common/random.h"
#include "pmem/device.h"
#include "pmem/pool.h"
#include "storage/kv_engine.h"
#include "storage/kv_pethash.h"
#include "test_util.h"

namespace oe::storage {
namespace {

using cache::AtomicTaggedPtr;
using cache::TaggedPtr;

constexpr KvEngineKind kAllKinds[] = {
    KvEngineKind::kUnorderedMap, KvEngineKind::kFlat,
    KvEngineKind::kPmemBucket};

/// Device + pool backing for kPmemBucket; unused by the DRAM engines.
struct EngineRig {
  std::unique_ptr<pmem::PmemDevice> device;
  std::unique_ptr<pmem::PmemPool> pool;
  std::unique_ptr<KvEngine> engine;
};

EngineRig MakeEngine(KvEngineKind kind, uint64_t pmem_buckets = 512) {
  EngineRig rig;
  rig.device = oe::test::MakeDevice({.size_bytes = 8 << 20});
  rig.pool = pmem::PmemPool::Create(rig.device.get()).ValueOrDie();
  KvEngineOptions options;
  options.pool = rig.pool.get();
  options.device = rig.device.get();
  options.pmem_buckets = pmem_buckets;
  rig.engine = MakeKvEngine(kind, options).ValueOrDie();
  return rig;
}

/// PMem-offset values are representable by every engine (the pethash
/// engine persists value bits only for pmem-tagged pointers).
TaggedPtr Val(uint64_t n) { return TaggedPtr::FromPmem(n * 8); }

TEST(KvEngineTest, InsertFindUpdateEraseClear) {
  for (KvEngineKind kind : kAllKinds) {
    SCOPED_TRACE(KvEngineKindToString(kind));
    EngineRig rig = MakeEngine(kind);
    KvEngine& kv = *rig.engine;
    EXPECT_EQ(kv.kind(), kind);
    EXPECT_EQ(kv.Size(), 0u);
    EXPECT_EQ(kv.Find(42), nullptr);
    EXPECT_FALSE(kv.Erase(42));

    AtomicTaggedPtr* slot = kv.Upsert(42, Val(1));
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(kv.Size(), 1u);
    EXPECT_EQ(slot->load().pmem_offset(), Val(1).pmem_offset());
    ASSERT_NE(kv.Find(42), nullptr);
    EXPECT_EQ(kv.Find(42)->load().pmem_offset(), Val(1).pmem_offset());

    // Upsert of an existing key updates in place, size unchanged.
    ASSERT_NE(kv.Upsert(42, Val(2)), nullptr);
    EXPECT_EQ(kv.Size(), 1u);
    EXPECT_EQ(kv.Find(42)->load().pmem_offset(), Val(2).pmem_offset());

    // The slot is an atomic the push path stores through directly.
    kv.Find(42)->store(Val(3));
    EXPECT_EQ(kv.Find(42)->load().pmem_offset(), Val(3).pmem_offset());

    EXPECT_TRUE(kv.Erase(42));
    EXPECT_EQ(kv.Size(), 0u);
    EXPECT_EQ(kv.Find(42), nullptr);
    EXPECT_FALSE(kv.Erase(42));

    for (EntryId k = 1; k <= 10; ++k) ASSERT_NE(kv.Upsert(k, Val(k)), nullptr);
    kv.Clear();
    EXPECT_EQ(kv.Size(), 0u);
    for (EntryId k = 1; k <= 10; ++k) EXPECT_EQ(kv.Find(k), nullptr);
    // And the engine is reusable after Clear.
    ASSERT_NE(kv.Upsert(7, Val(7)), nullptr);
    EXPECT_EQ(kv.Size(), 1u);
  }
}

TEST(KvEngineTest, GrowthKeepsEveryKeyFindable) {
  // 3000 keys: the flat table rehashes ~6 times from its 64-slot seed; the
  // pethash table stays within 512 buckets * 15 slots without growing.
  constexpr EntryId kKeys = 3000;
  for (KvEngineKind kind : kAllKinds) {
    SCOPED_TRACE(KvEngineKindToString(kind));
    EngineRig rig = MakeEngine(kind);
    KvEngine& kv = *rig.engine;
    for (EntryId k = 1; k <= kKeys; ++k) {
      ASSERT_NE(kv.Upsert(k, Val(k)), nullptr) << "key " << k;
    }
    ASSERT_EQ(kv.Size(), kKeys);
    for (EntryId k = 1; k <= kKeys; ++k) {
      AtomicTaggedPtr* slot = kv.Find(k);
      ASSERT_NE(slot, nullptr) << "key " << k;
      EXPECT_EQ(slot->load().pmem_offset(), Val(k).pmem_offset());
    }
    EXPECT_EQ(kv.Find(kKeys + 1), nullptr);
  }
}

TEST(KvEngineTest, RandomizedOpsMatchReferenceMap) {
  const uint64_t seed = oe::test::TestSeed(20260809);
  SCOPED_TRACE("OE_TEST_SEED=" + std::to_string(seed));
  for (KvEngineKind kind : kAllKinds) {
    SCOPED_TRACE(KvEngineKindToString(kind));
    EngineRig rig = MakeEngine(kind);
    KvEngine& kv = *rig.engine;
    std::unordered_map<EntryId, uint64_t> ref;
    Random rng(seed);
    for (int op = 0; op < 20000; ++op) {
      const EntryId key = 1 + rng.Uniform(600);  // dense: plenty of hits
      const uint64_t roll = rng.Uniform(10);
      if (roll < 6) {
        const uint64_t v = 1 + rng.Uniform(1u << 20);
        ASSERT_NE(kv.Upsert(key, Val(v)), nullptr);
        ref[key] = v;
      } else if (roll < 9) {
        EXPECT_EQ(kv.Erase(key), ref.erase(key) != 0);
      } else {
        AtomicTaggedPtr* slot = kv.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(slot != nullptr, it != ref.end());
        if (slot != nullptr) {
          EXPECT_EQ(slot->load().pmem_offset(), Val(it->second).pmem_offset());
        }
      }
    }
    ASSERT_EQ(kv.Size(), ref.size());
    // Full-scan parity: ForEach yields exactly the reference contents.
    size_t seen = 0;
    kv.ForEach([&](EntryId key, TaggedPtr value) {
      ++seen;
      auto it = ref.find(key);
      ASSERT_NE(it, ref.end()) << "ForEach produced unknown key " << key;
      EXPECT_EQ(value.pmem_offset(), Val(it->second).pmem_offset());
    });
    EXPECT_EQ(seen, ref.size());
  }
}

// FindBatch is the store's hot path (pipelined probe), Find the reference:
// over a mixed stream of present/absent keys — batch sizes straddling the
// engines' internal pipeline strides — both must agree slot-for-slot.
TEST(KvEngineTest, FindBatchMatchesFind) {
  const uint64_t seed = oe::test::TestSeed(20260810);
  SCOPED_TRACE("OE_TEST_SEED=" + std::to_string(seed));
  for (KvEngineKind kind : kAllKinds) {
    SCOPED_TRACE(KvEngineKindToString(kind));
    EngineRig rig = MakeEngine(kind);
    KvEngine& kv = *rig.engine;
    Random rng(seed);
    for (EntryId key = 0; key < 800; ++key) {
      if (rng.Uniform(3) != 0) {  // ~1/3 of the keyspace stays absent
        ASSERT_NE(kv.Upsert(key, Val(key + 1)), nullptr);
      }
    }
    for (size_t n : {size_t{1}, size_t{7}, size_t{16}, size_t{33},
                     size_t{256}}) {
      std::vector<EntryId> keys(n);
      for (auto& key : keys) key = rng.Uniform(1000);  // some out of range
      std::vector<AtomicTaggedPtr*> slots(n, nullptr);
      kv.FindBatch(keys.data(), n, slots.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(slots[i], kv.Find(keys[i])) << "key " << keys[i];
      }
    }
  }
}

TEST(KvEngineTest, PersistSitesMatchEngineKind) {
  for (KvEngineKind kind : kAllKinds) {
    SCOPED_TRACE(KvEngineKindToString(kind));
    EngineRig rig = MakeEngine(kind);
    const auto sites = rig.engine->PersistSites();
    if (kind == KvEngineKind::kPmemBucket) {
      const std::vector<std::string> want = {"kv-format", "kv-upsert",
                                             "kv-erase", "kv-clear"};
      ASSERT_EQ(sites.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(sites[i], want[i]);
    } else {
      EXPECT_TRUE(sites.empty()) << "DRAM engines never persist";
    }
  }
}

TEST(KvEngineTest, ParseAndFormatKindNames) {
  for (KvEngineKind kind : kAllKinds) {
    KvEngineKind parsed;
    EXPECT_TRUE(ParseKvEngineKind(KvEngineKindToString(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  KvEngineKind parsed;
  EXPECT_FALSE(ParseKvEngineKind("no-such-engine", &parsed));
}

// kPmemBucket is the only fixed-capacity engine: a single 15-slot bucket
// fills up, Upsert returns nullptr (the store surfaces OutOfSpace), and an
// Erase makes room again.
TEST(KvEngineTest, PethashFullBucketReturnsNull) {
  EngineRig rig = MakeEngine(KvEngineKind::kPmemBucket, /*pmem_buckets=*/1);
  KvEngine& kv = *rig.engine;
  EntryId filled = 0;
  for (EntryId k = 1; k <= 15; ++k) {
    ASSERT_NE(kv.Upsert(k, Val(k)), nullptr);
    filled = k;
  }
  EXPECT_EQ(kv.Size(), 15u);
  EXPECT_EQ(kv.Upsert(16, Val(16)), nullptr);
  // Updating an existing key still works at capacity.
  ASSERT_NE(kv.Upsert(filled, Val(99)), nullptr);
  EXPECT_TRUE(kv.Erase(filled));
  ASSERT_NE(kv.Upsert(16, Val(16)), nullptr);
  EXPECT_EQ(kv.Size(), 15u);
}

// The pethash slots live in PMem: pmem-tagged values must survive a crash
// of everything volatile. (The *store* never relies on this — it rebuilds
// engines from the record scan — but the engine's own persistence contract
// is what makes its "kv-*" sites meaningful crash points.)
TEST(KvEngineTest, PethashPersistsPmemValuedSlots) {
  EngineRig rig = MakeEngine(KvEngineKind::kPmemBucket, /*pmem_buckets=*/64);
  for (EntryId k = 1; k <= 100; ++k) {
    ASSERT_NE(rig.engine->Upsert(k, Val(k)), nullptr);
  }
  ASSERT_TRUE(rig.engine->Erase(50));
  rig.device->SimulateCrash();

  rig.engine.reset();
  rig.pool = pmem::PmemPool::Open(rig.device.get()).ValueOrDie();
  // Re-attach to the persisted bucket array via the pool's tag scan (the
  // store does the same through its recovery path).
  uint64_t extent = 0;
  rig.pool->ForEachAllocated(KvEngineOptions().bucket_extent_tag,
                             [&](uint64_t off, uint64_t) { extent = off; });
  ASSERT_NE(extent, 0u);
  KvEngineOptions options;
  options.pool = rig.pool.get();
  options.device = rig.device.get();
  auto reopened =
      PethashKvEngine::Attach(options, extent, /*buckets=*/64).ValueOrDie();
  EXPECT_EQ(reopened->Size(), 99u);
  for (EntryId k = 1; k <= 100; ++k) {
    if (k == 50) {
      EXPECT_EQ(reopened->Find(k), nullptr);
      continue;
    }
    ASSERT_NE(reopened->Find(k), nullptr) << "key " << k;
    EXPECT_EQ(reopened->Find(k)->load().pmem_offset(), Val(k).pmem_offset());
  }
}

}  // namespace
}  // namespace oe::storage

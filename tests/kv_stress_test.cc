// Engine-matrix stress: the synchronous training protocol (concurrent
// pulls, then concurrent pushes + checkpoint requests, maintainer threads
// draining in parallel) run against every KvEngine kind and both record
// allocators. SGD with a constant gradient is order-independent, so the
// concurrent store must land bit-exactly on the serial replay no matter
// which index implementation sits under the shard locks. Built to run
// under ThreadSanitizer (ctest -L tsan) and AddressSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "pmem/device.h"
#include "storage/pipelined_store.h"

namespace oe {
namespace {

using pmem::CrashFidelity;
using pmem::PmemDevice;
using pmem::PmemDeviceOptions;
using storage::EntryId;
using storage::InitializerKind;
using storage::InitializerSpec;
using storage::KvEngineKind;
using storage::OptimizerKind;
using storage::PipelinedStore;
using storage::StoreConfig;

constexpr uint32_t kDim = 8;
constexpr float kLearningRate = 0.5f;
constexpr float kGrad = 1.0f;
constexpr int kThreads = 4;
constexpr int kBatches = 10;
constexpr uint64_t kUniverse = 96;
constexpr uint64_t kHot = 6;
constexpr int kCold = 16;

struct MatrixPoint {
  KvEngineKind engine;
  bool slab_alloc;
};

std::string PointName(const MatrixPoint& p) {
  return std::string(KvEngineKindToString(p.engine)) +
         (p.slab_alloc ? "+slab" : "+pool");
}

StoreConfig MatrixConfig(const MatrixPoint& p) {
  StoreConfig config;
  config.dim = kDim;
  config.optimizer.kind = OptimizerKind::kSgd;
  config.optimizer.learning_rate = kLearningRate;
  config.initializer.kind = InitializerKind::kUniform;
  config.initializer.scale = 0.1f;
  config.cache_bytes = 4 * 1024;  // tiny: constant evictions + PMem pushes
  config.store_shards = 8;
  config.maintainer_threads = 2;
  config.kv_engine = p.engine;
  config.kv_pmem_buckets = 256;  // per shard; plenty for 96 keys
  config.slab_alloc = p.slab_alloc;
  return config;
}

std::vector<EntryId> KeysFor(int thread, int batch) {
  std::set<EntryId> keys;
  for (EntryId k = 0; k < kHot; ++k) keys.insert(k);
  for (int j = 0; j < kCold; ++j) {
    keys.insert(kHot + (static_cast<uint64_t>(thread) * 31 +
                        static_cast<uint64_t>(j) * 7 +
                        static_cast<uint64_t>(batch) * 13) %
                           (kUniverse - kHot));
  }
  return {keys.begin(), keys.end()};
}

std::vector<float> ExpectedWeights(const InitializerSpec& init, EntryId key,
                                   int pushes) {
  std::vector<float> w(kDim);
  init.Fill(key, w.data(), kDim);
  for (int p = 0; p < pushes; ++p) {
    for (uint32_t i = 0; i < kDim; ++i) w[i] -= kLearningRate * kGrad;
  }
  return w;
}

void RunMatrixPoint(const MatrixPoint& point) {
  SCOPED_TRACE(PointName(point));
  PmemDeviceOptions dopts;
  dopts.size_bytes = 32 << 20;
  dopts.crash_fidelity = CrashFidelity::kStrict;
  auto device = PmemDevice::Create(dopts).ValueOrDie();
  auto store =
      PipelinedStore::Create(MatrixConfig(point), device.get()).ValueOrDie();
  const InitializerSpec init = store->config().initializer;

  // Precompute key sets and cumulative push counts so workers verify
  // pulled values without sharing mutable state.
  std::vector<std::vector<std::vector<EntryId>>> keysets(kBatches + 1);
  std::vector<std::vector<int>> count_before(kBatches + 2,
                                             std::vector<int>(kUniverse, 0));
  for (int b = 1; b <= kBatches; ++b) {
    keysets[b].resize(kThreads);
    count_before[b + 1] = count_before[b];
    for (int t = 0; t < kThreads; ++t) {
      keysets[b][t] = KeysFor(t, b);
      for (EntryId key : keysets[b][t]) count_before[b + 1][key]++;
    }
  }

  Barrier barrier(kThreads);
  std::atomic<int> pull_mismatches{0};
  std::atomic<int> op_failures{0};

  auto worker = [&](int t) {
    std::vector<float> weights;
    std::vector<float> grads;
    for (int b = 1; b <= kBatches; ++b) {
      const auto& keys = keysets[b][t];
      weights.resize(keys.size() * kDim);

      barrier.ArriveAndWait();
      if (!store->Pull(keys.data(), keys.size(), b, weights.data()).ok()) {
        op_failures.fetch_add(1);
      }
      for (size_t j = 0; j < keys.size(); ++j) {
        const auto want =
            ExpectedWeights(init, keys[j], count_before[b][keys[j]]);
        for (uint32_t i = 0; i < kDim; ++i) {
          if (weights[j * kDim + i] != want[i]) {
            pull_mismatches.fetch_add(1);
            break;
          }
        }
      }

      if (barrier.ArriveAndWait()) store->FinishPullPhase(b);
      barrier.ArriveAndWait();

      if (t == 0 && b % 4 == 0) {
        if (!store->RequestCheckpoint(b).ok()) op_failures.fetch_add(1);
      }
      grads.assign(keys.size() * kDim, kGrad);
      if (!store->Push(keys.data(), keys.size(), grads.data(), b).ok()) {
        op_failures.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(op_failures.load(), 0);
  EXPECT_EQ(pull_mismatches.load(), 0);
  ASSERT_TRUE(store->DrainCheckpoints().ok());
  EXPECT_GT(store->PublishedCheckpoint(), 0u);

  // Any lost update — stale slot read, torn pointer, dropped COW, a bucket
  // probe landing on the wrong slot — shows up as a wrong final weight.
  const auto& final_count = count_before[kBatches + 1];
  size_t touched = 0;
  for (EntryId key = 0; key < kUniverse; ++key) {
    if (final_count[key] == 0) continue;
    ++touched;
    auto got = store->Peek(key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    const std::vector<float> values = std::move(got).ValueOrDie();
    const auto want = ExpectedWeights(init, key, final_count[key]);
    for (uint32_t i = 0; i < kDim; ++i) {
      ASSERT_EQ(values[i], want[i])
          << "key " << key << " dim " << i << " after " << final_count[key]
          << " pushes";
    }
  }
  EXPECT_EQ(store->EntryCount(), touched);
}

TEST(KvEngineStressTest, UnorderedMapWithPoolAllocator) {
  RunMatrixPoint({KvEngineKind::kUnorderedMap, /*slab_alloc=*/false});
}

TEST(KvEngineStressTest, UnorderedMapWithSlabAllocator) {
  RunMatrixPoint({KvEngineKind::kUnorderedMap, /*slab_alloc=*/true});
}

TEST(KvEngineStressTest, FlatWithSlabAllocator) {
  RunMatrixPoint({KvEngineKind::kFlat, /*slab_alloc=*/true});
}

TEST(KvEngineStressTest, FlatWithPoolAllocator) {
  RunMatrixPoint({KvEngineKind::kFlat, /*slab_alloc=*/false});
}

TEST(KvEngineStressTest, PmemBucketWithSlabAllocator) {
  RunMatrixPoint({KvEngineKind::kPmemBucket, /*slab_alloc=*/true});
}

}  // namespace
}  // namespace oe

// Elastic cluster membership: versioned slot-table routing, live shard
// migration (snapshot-and-forward with seal + kWrongOwner redirect),
// scale-out / scale-in under faulty networks, kill-mid-migration rollback,
// and crash enumeration of the new migration persist sites (route-blob /
// route-root / migrate-entry / migrate-publish / migrate-gc). See
// DESIGN.md §11 "Membership & routing".

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "ckpt/checkpoint_log.h"
#include "common/logging.h"
#include "pmem/device.h"
#include "pmem/fault_plan.h"
#include "ps/placement.h"
#include "ps/ps_client.h"
#include "ps/ps_cluster.h"
#include "ps/ps_service.h"
#include "ps/slot_table.h"
#include "storage/entry_layout.h"
#include "storage/optimizer.h"
#include "storage/pipelined_store.h"
#include "test_util.h"

namespace oe {
namespace {

using storage::EntryId;
using storage::kNumRoutingSlots;
using storage::PipelinedStore;
using storage::SlotOfKey;

constexpr uint32_t kDim = 4;

// ---------- Slot table ----------

TEST(SlotTableTest, RoundRobinMatchesLegacyModuloRouter) {
  // kNumRoutingSlots is a multiple of every power-of-two node count, so
  // the round-robin table routes exactly like the legacy hash-modulo
  // router for the n the paper's experiments use.
  for (uint32_t n : {1u, 2u, 4u, 8u, 16u}) {
    const ps::Router router(n);
    EXPECT_EQ(router.num_nodes(), n);
    EXPECT_EQ(router.epoch(), 1u);
    for (EntryId key = 0; key < 4096; ++key) {
      EXPECT_EQ(router.NodeFor(key), SlotOfKey(key) % n) << "n=" << n;
    }
  }
}

TEST(SlotTableTest, RoundRobinPartitionsSlotsEvenly) {
  const auto table = ps::SlotTable::MakeRoundRobin(4);
  EXPECT_EQ(table->active, std::vector<net::NodeId>({0, 1, 2, 3}));
  size_t total = 0;
  for (net::NodeId node = 0; node < 4; ++node) {
    const auto owned = table->SlotsOwnedBy(node);
    EXPECT_EQ(owned.size(), kNumRoutingSlots / 4);
    total += owned.size();
    for (uint32_t slot : owned) EXPECT_EQ(table->owners[slot], node);
  }
  EXPECT_EQ(total, kNumRoutingSlots);
}

TEST(SlotTableTest, PublishRequiresStrictlyIncreasingEpoch) {
  ps::RoutingDirectory directory(ps::SlotTable::MakeRoundRobin(2));
  const auto table = directory.Current();
  ASSERT_EQ(table->epoch, 1u);

  // Same epoch: rejected — a rolled-back migration must not resurrect.
  EXPECT_FALSE(
      directory.Publish(ps::SlotTable::Make(1, table->owners, table->active))
          .ok());
  EXPECT_FALSE(
      directory.Publish(ps::SlotTable::Make(0, table->owners, table->active))
          .ok());
  EXPECT_EQ(directory.Current()->epoch, 1u);

  ASSERT_TRUE(
      directory.Publish(ps::SlotTable::Make(2, table->owners, table->active))
          .ok());
  EXPECT_EQ(directory.Current()->epoch, 2u);
}

// ---------- Store-level migration primitives ----------

storage::StoreConfig StoreCfg() {
  storage::StoreConfig config = test::SmallConfig(kDim);
  config.maintainer_threads = 1;
  return config;
}

// Pull-then-push training rounds on a bare store; gradients depend on the
// batch id only, so any two stores given the same batches agree bit-exactly.
void TrainStore(storage::EmbeddingStore* store, const std::vector<EntryId>& keys,
                uint64_t from, uint64_t to, float scale) {
  std::vector<float> weights(keys.size() * kDim);
  for (uint64_t batch = from; batch <= to; ++batch) {
    ASSERT_TRUE(
        store->Pull(keys.data(), keys.size(), batch, weights.data()).ok());
    store->FinishPullPhase(batch);
    std::vector<float> grads(keys.size() * kDim,
                             scale * static_cast<float>(batch));
    ASSERT_TRUE(
        store->Push(keys.data(), keys.size(), grads.data(), batch).ok());
  }
}

void Checkpoint(storage::EmbeddingStore* store, uint64_t batch) {
  ASSERT_TRUE(store->RequestCheckpoint(batch).ok());
  ASSERT_TRUE(store->DrainCheckpoints().ok());
}

std::vector<bool> BitmapOfKeys(const std::vector<EntryId>& keys) {
  std::vector<bool> bitmap(kNumRoutingSlots, false);
  for (EntryId key : keys) bitmap[SlotOfKey(key)] = true;
  return bitmap;
}

// First `n` ids >= `start` whose slot parity matches `odd` — two calls with
// opposite parity give key sets whose slot ranges never collide.
std::vector<EntryId> KeysBySlotParity(bool odd, size_t n, EntryId start) {
  std::vector<EntryId> keys;
  for (EntryId k = start; keys.size() < n; ++k) {
    if ((SlotOfKey(k) % 2 == 1) == odd) keys.push_back(k);
  }
  return keys;
}

TEST(StoreMigrationTest, OwnedSlotsRootRoundTrips) {
  auto device = test::MakeDevice();
  auto store = PipelinedStore::Create(StoreCfg(), device.get()).ValueOrDie();

  // Lazily written: a fresh store has no routing root.
  auto absent = store->ReadOwnedSlots().ValueOrDie();
  EXPECT_FALSE(absent.present);

  std::vector<bool> owned(kNumRoutingSlots, false);
  owned[7] = owned[4090] = true;
  ASSERT_TRUE(store->SetOwnedSlots(3, owned, {11, 22}).ok());
  auto read = store->ReadOwnedSlots().ValueOrDie();
  EXPECT_TRUE(read.present);
  EXPECT_EQ(read.epoch, 3u);
  EXPECT_EQ(read.owned, owned);
  EXPECT_EQ(read.extras, (std::unordered_set<EntryId>{11, 22}));

  // A rewrite replaces (not merges) the previous root.
  std::vector<bool> owned2(kNumRoutingSlots, true);
  ASSERT_TRUE(store->SetOwnedSlots(4, owned2, {}).ok());
  read = store->ReadOwnedSlots().ValueOrDie();
  EXPECT_EQ(read.epoch, 4u);
  EXPECT_EQ(read.owned, owned2);
  EXPECT_TRUE(read.extras.empty());
}

TEST(StoreMigrationTest, ExportImportRoundTripsModelAndCheckpoint) {
  auto src_device = test::MakeDevice();
  auto src = PipelinedStore::Create(StoreCfg(), src_device.get()).ValueOrDie();
  std::vector<EntryId> keys(40);
  std::iota(keys.begin(), keys.end(), 1);
  TrainStore(src.get(), keys, 1, 3, 0.5f);
  Checkpoint(src.get(), 3);

  auto log_device =
      test::MakeDevice({.kind = pmem::DeviceKind::kDram,
                        .fidelity = pmem::CrashFidelity::kNone});
  const storage::EntryLayout layout(kDim, StoreCfg().optimizer.Slots());
  auto log =
      ckpt::CheckpointLog::Create(log_device.get(), layout).ValueOrDie();
  std::vector<bool> all(kNumRoutingSlots, true);
  ASSERT_TRUE(src->ExportRange(all, {}, log.get()).ok());

  auto dst_device = test::MakeDevice();
  auto dst = PipelinedStore::Create(StoreCfg(), dst_device.get()).ValueOrDie();
  std::vector<EntryId> imported;
  ASSERT_TRUE(dst->ImportRange(*log, &imported).ok());
  EXPECT_EQ(imported.size(), keys.size());
  // The fresh target agrees with the cluster's serving version at once.
  EXPECT_EQ(dst->PublishedCheckpoint(), 3u);
  EXPECT_EQ(dst->EntryCount(), keys.size());
  for (EntryId key : keys) {
    EXPECT_EQ(dst->Peek(key).ValueOrDie(), src->Peek(key).ValueOrDie())
        << "key " << key;
  }
}

TEST(StoreMigrationTest, ExportRequiresPublishedCheckpointUnlessEmpty) {
  auto device = test::MakeDevice();
  auto store = PipelinedStore::Create(StoreCfg(), device.get()).ValueOrDie();
  std::vector<EntryId> keys = {1, 2, 3};
  TrainStore(store.get(), keys, 1, 1, 0.5f);

  auto log_device =
      test::MakeDevice({.kind = pmem::DeviceKind::kDram,
                        .fidelity = pmem::CrashFidelity::kNone});
  const storage::EntryLayout layout(kDim, StoreCfg().optimizer.Slots());
  auto log =
      ckpt::CheckpointLog::Create(log_device.get(), layout).ValueOrDie();

  // No checkpoint yet: a non-empty range has no snapshot to migrate.
  std::vector<bool> all(kNumRoutingSlots, true);
  EXPECT_EQ(store->ExportRange(all, {}, log.get()).code(),
            StatusCode::kFailedPrecondition);
  // An empty range is legal without one (nothing to snapshot).
  std::vector<bool> none(kNumRoutingSlots, false);
  EXPECT_TRUE(store->ExportRange(none, {}, log.get()).ok());
}

TEST(StoreMigrationTest, ImportPrefersLocalCopies) {
  // A key already present on the target (hot replica, or a re-delivered
  // image) must win over the imported record.
  auto src_device = test::MakeDevice();
  auto src = PipelinedStore::Create(StoreCfg(), src_device.get()).ValueOrDie();
  std::vector<EntryId> keys = {5, 6, 7, 8};
  TrainStore(src.get(), keys, 1, 2, 0.5f);
  Checkpoint(src.get(), 2);

  auto log_device =
      test::MakeDevice({.kind = pmem::DeviceKind::kDram,
                        .fidelity = pmem::CrashFidelity::kNone});
  const storage::EntryLayout layout(kDim, StoreCfg().optimizer.Slots());
  auto log =
      ckpt::CheckpointLog::Create(log_device.get(), layout).ValueOrDie();
  std::vector<bool> all(kNumRoutingSlots, true);
  ASSERT_TRUE(src->ExportRange(all, {}, log.get()).ok());

  auto dst_device = test::MakeDevice();
  auto dst = PipelinedStore::Create(StoreCfg(), dst_device.get()).ValueOrDie();
  TrainStore(dst.get(), {7}, 1, 1, 9.0f);  // local, diverged copy of key 7
  const auto local = dst->Peek(7).ValueOrDie();

  std::vector<EntryId> imported;
  ASSERT_TRUE(dst->ImportRange(*log, &imported).ok());
  EXPECT_EQ(imported.size(), 3u);  // 5, 6, 8 — not the locally-present 7
  EXPECT_EQ(dst->Peek(7).ValueOrDie(), local);
  for (EntryId key : {5, 6, 8}) {
    EXPECT_EQ(dst->Peek(key).ValueOrDie(), src->Peek(key).ValueOrDie());
  }
}

TEST(StoreMigrationTest, PurgeSlotsDropsRangeButKeepsExtras) {
  auto device = test::MakeDevice();
  auto store = PipelinedStore::Create(StoreCfg(), device.get()).ValueOrDie();
  const auto keep_keys = KeysBySlotParity(false, 12, 1);
  const auto purge_keys = KeysBySlotParity(true, 12, 1);
  std::vector<EntryId> all_keys = keep_keys;
  all_keys.insert(all_keys.end(), purge_keys.begin(), purge_keys.end());
  TrainStore(store.get(), all_keys, 1, 2, 0.5f);
  Checkpoint(store.get(), 2);

  const EntryId pinned_hot = purge_keys.front();
  ASSERT_TRUE(
      store->PurgeSlots(BitmapOfKeys(purge_keys), {pinned_hot}).ok());

  EXPECT_EQ(store->EntryCount(), keep_keys.size() + 1);
  EXPECT_TRUE(store->Peek(pinned_hot).ok());
  for (EntryId key : keep_keys) EXPECT_TRUE(store->Peek(key).ok());
  for (EntryId key : purge_keys) {
    if (key == pinned_hot) continue;
    EXPECT_FALSE(store->Peek(key).ok()) << "key " << key;
  }
  // The purged range is re-usable: pulling a dropped key re-initializes it.
  std::vector<float> weights(kDim);
  EXPECT_TRUE(store->Pull(&purge_keys[1], 1, 3, weights.data()).ok());
}

TEST(StoreMigrationTest, RemoveKeysRollsBackAnImportedRange) {
  auto src_device = test::MakeDevice();
  auto src = PipelinedStore::Create(StoreCfg(), src_device.get()).ValueOrDie();
  std::vector<EntryId> keys = {21, 22, 23, 24, 25};
  TrainStore(src.get(), keys, 1, 2, 0.5f);
  Checkpoint(src.get(), 2);

  auto log_device =
      test::MakeDevice({.kind = pmem::DeviceKind::kDram,
                        .fidelity = pmem::CrashFidelity::kNone});
  const storage::EntryLayout layout(kDim, StoreCfg().optimizer.Slots());
  auto log =
      ckpt::CheckpointLog::Create(log_device.get(), layout).ValueOrDie();
  std::vector<bool> all(kNumRoutingSlots, true);
  ASSERT_TRUE(src->ExportRange(all, {}, log.get()).ok());

  auto dst_device = test::MakeDevice();
  auto dst = PipelinedStore::Create(StoreCfg(), dst_device.get()).ValueOrDie();
  std::vector<EntryId> imported;
  ASSERT_TRUE(dst->ImportRange(*log, &imported).ok());
  ASSERT_EQ(dst->EntryCount(), keys.size());

  ASSERT_TRUE(dst->RemoveKeys(imported).ok());
  EXPECT_EQ(dst->EntryCount(), 0u);
  for (EntryId key : keys) EXPECT_FALSE(dst->Peek(key).ok());
}

TEST(StoreMigrationTest, RecoveryDiscardsRecordsOutsideCommittedOwnership) {
  auto device = test::MakeDevice();
  auto store = PipelinedStore::Create(StoreCfg(), device.get()).ValueOrDie();
  const auto owned_keys = KeysBySlotParity(false, 10, 1);
  const auto foreign_keys = KeysBySlotParity(true, 10, 1);
  std::vector<EntryId> all_keys = owned_keys;
  all_keys.insert(all_keys.end(), foreign_keys.begin(), foreign_keys.end());
  TrainStore(store.get(), all_keys, 1, 2, 0.5f);
  Checkpoint(store.get(), 2);
  std::vector<std::vector<float>> owned_values;
  for (EntryId key : owned_keys) {
    owned_values.push_back(store->Peek(key).ValueOrDie());
  }
  const EntryId extra = foreign_keys.front();
  const auto extra_value = store->Peek(extra).ValueOrDie();

  // Commit ownership of only the even-slot half, plus one hot extra from
  // the foreign half.
  ASSERT_TRUE(store->SetOwnedSlots(2, BitmapOfKeys(owned_keys), {extra}).ok());

  store.reset();
  device->SimulateCrash();
  auto reopened = PipelinedStore::Open(StoreCfg(), device.get()).ValueOrDie();

  EXPECT_EQ(reopened->PublishedCheckpoint(), 2u);
  EXPECT_EQ(reopened->EntryCount(), owned_keys.size() + 1);
  for (size_t i = 0; i < owned_keys.size(); ++i) {
    EXPECT_EQ(reopened->Peek(owned_keys[i]).ValueOrDie(), owned_values[i]);
  }
  EXPECT_EQ(reopened->Peek(extra).ValueOrDie(), extra_value);
  for (EntryId key : foreign_keys) {
    if (key == extra) continue;
    EXPECT_FALSE(reopened->Peek(key).ok()) << "key " << key;
  }
  // And the reopened root still names the committed ownership.
  auto root = reopened->ReadOwnedSlots().ValueOrDie();
  EXPECT_TRUE(root.present);
  EXPECT_EQ(root.epoch, 2u);
}

// ---------- Crash enumeration of the migration persist sites ----------

// One run of the target-side migration sequence (own a range, import a
// foreign image, commit the expanded root) with a crash at persist event
// `crash_at` (0 = fault-free reference run), followed by in-place recovery
// and invariant checks.
struct ImportCrashOutcome {
  uint64_t total_events = 0;
  std::vector<std::string> sites;
  uint64_t published = 0;
  size_t incoming_present = 0;
  uint64_t root_epoch = 0;  // 0 = no root committed
};

class TargetImportCrashRig {
 public:
  TargetImportCrashRig()
      : local_keys_(KeysBySlotParity(false, 10, 1)),
        incoming_keys_(KeysBySlotParity(true, 10, 1)) {
    // The migration image: a throwaway source trained past the target's
    // checkpoint (batch 5 > 3) so the import also bumps the target's
    // published checkpoint ("migrate-publish").
    src_device_ = test::MakeDevice({.fidelity = pmem::CrashFidelity::kNone});
    auto src =
        PipelinedStore::Create(StoreCfg(), src_device_.get()).ValueOrDie();
    TrainStore(src.get(), incoming_keys_, 1, 5, 0.25f);
    Checkpoint(src.get(), 5);
    for (EntryId key : incoming_keys_) {
      incoming_values_.push_back(src->Peek(key).ValueOrDie());
    }
    log_device_ = test::MakeDevice({.kind = pmem::DeviceKind::kDram,
                                    .fidelity = pmem::CrashFidelity::kNone});
    const storage::EntryLayout layout(kDim, StoreCfg().optimizer.Slots());
    log_ = ckpt::CheckpointLog::Create(log_device_.get(), layout).ValueOrDie();
    std::vector<bool> all(kNumRoutingSlots, true);
    OE_CHECK_OK(src->ExportRange(all, {}, log_.get()));
  }

  // Runs the sequence; fills `out` and returns "" or the first violation.
  std::string Run(uint64_t crash_at, ImportCrashOutcome* out) {
    auto device = test::MakeDevice({.size_bytes = 8 << 20});
    auto target =
        PipelinedStore::Create(StoreCfg(), device.get()).ValueOrDie();
    TrainStore(target.get(), local_keys_, 1, 3, 0.5f);
    Checkpoint(target.get(), 3);
    std::vector<std::vector<float>> local_values;
    for (EntryId key : local_keys_) {
      local_values.push_back(target->Peek(key).ValueOrDie());
    }

    device->EnableEventTrace(crash_at == 0);
    pmem::FaultPlan plan;
    plan.crash_at = crash_at;
    device->InstallFaultPlan(plan);
    const uint64_t base = device->persist_events();

    // The migration sequence under test; statuses are ignored once the
    // device has crashed (the doomed execution continues, suppressed).
    (void)target->SetOwnedSlots(1, BitmapOfKeys(local_keys_), {});
    std::vector<EntryId> imported;
    (void)target->ImportRange(*log_, &imported);
    std::vector<bool> combined = BitmapOfKeys(local_keys_);
    for (EntryId key : incoming_keys_) combined[SlotOfKey(key)] = true;
    (void)target->SetOwnedSlots(2, combined, {});

    if (crash_at == 0) {
      out->total_events = device->persist_events() - base;
      out->sites = device->TakeEventTrace();
      if (device->crashed()) return "fault fired during the reference run";
    }
    device->SimulateCrash();
    device->ClearFault();
    Status recovered = target->RecoverFromCrash();
    if (!recovered.ok()) return "recovery failed: " + recovered.ToString();

    out->published = target->PublishedCheckpoint();
    if (out->published != 3 && out->published != 5) {
      return "recovered checkpoint " + std::to_string(out->published) +
             " is neither the target's (3) nor the image's (5)";
    }
    auto root = target->ReadOwnedSlots().ValueOrDie();
    out->root_epoch = root.present ? root.epoch : 0;

    // The target's own range must always survive at its checkpoint.
    for (size_t i = 0; i < local_keys_.size(); ++i) {
      auto peek = target->Peek(local_keys_[i]);
      if (!peek.ok()) {
        return "local key " + std::to_string(local_keys_[i]) + " lost";
      }
      if (peek.value() != local_values[i]) {
        return "local key " + std::to_string(local_keys_[i]) + " corrupted";
      }
    }
    // The imported range is all-or-nothing: present (bit-exact) only once
    // the expanded ownership root committed, never a partial import.
    out->incoming_present = 0;
    for (size_t i = 0; i < incoming_keys_.size(); ++i) {
      auto peek = target->Peek(incoming_keys_[i]);
      if (!peek.ok()) continue;
      if (peek.value() != incoming_values_[i]) {
        return "imported key " + std::to_string(incoming_keys_[i]) +
               " diverges from the source";
      }
      ++out->incoming_present;
    }
    if (out->incoming_present != 0 &&
        out->incoming_present != incoming_keys_.size()) {
      return "torn import: " + std::to_string(out->incoming_present) + "/" +
             std::to_string(incoming_keys_.size()) + " keys present";
    }
    if ((out->root_epoch == 2) !=
        (out->incoming_present == incoming_keys_.size())) {
      return "imported range does not match the committed root epoch " +
             std::to_string(out->root_epoch);
    }
    return "";
  }

  size_t num_incoming() const { return incoming_keys_.size(); }

 private:
  std::vector<EntryId> local_keys_;
  std::vector<EntryId> incoming_keys_;
  std::vector<std::vector<float>> incoming_values_;
  std::unique_ptr<pmem::PmemDevice> src_device_;
  std::unique_ptr<pmem::PmemDevice> log_device_;
  std::unique_ptr<ckpt::CheckpointLog> log_;
};

TEST(MigrationCrashTest, TargetImportAtomicAtEveryPersistSite) {
  TargetImportCrashRig rig;
  ImportCrashOutcome reference;
  ASSERT_EQ(rig.Run(0, &reference), "");
  ASSERT_GT(reference.total_events, 0u);
  ASSERT_EQ(reference.sites.size(), reference.total_events);
  ASSERT_EQ(reference.incoming_present, rig.num_incoming());

  // Every new persist site of the import path appears in the schedule.
  auto count_site = [&](const std::string& name) {
    size_t n = 0;
    for (const auto& site : reference.sites) {
      if (site.find(name) != std::string::npos) ++n;
    }
    return n;
  };
  EXPECT_GE(count_site("route-blob"), 2u);
  EXPECT_GE(count_site("route-root"), 2u);
  EXPECT_GE(count_site("migrate-entry"), rig.num_incoming());
  EXPECT_GE(count_site("migrate-publish"), 1u);

  // Crash once at every persist event; the import must be atomic (and the
  // import count monotone: once committed, later crash points keep it).
  bool committed = false;
  for (uint64_t e = 1; e <= reference.total_events; ++e) {
    ImportCrashOutcome out;
    const std::string violation = rig.Run(e, &out);
    EXPECT_EQ(violation, "")
        << "crash at event " << e << " (site " << reference.sites[e - 1]
        << ")";
    const bool present = out.incoming_present == rig.num_incoming();
    EXPECT_FALSE(committed && !present)
        << "import un-committed at event " << e;
    committed = committed || present;
  }
  EXPECT_TRUE(committed);  // the final crash point keeps the import
}

// Source-side handoff: shrink the committed ownership, then purge the
// handed-off range ("migrate-gc"). The shrunk root is the commit point —
// recovery after any crash yields either the full pre-migration range or
// exactly the kept range, never a partially purged store.
TEST(MigrationCrashTest, SourcePurgeAtomicAtEveryPersistSite) {
  const auto kept_keys = KeysBySlotParity(false, 10, 1);
  const auto handed_keys = KeysBySlotParity(true, 10, 1);

  struct Outcome {
    uint64_t total_events = 0;
    std::vector<std::string> sites;
    size_t handed_present = 0;
  };
  auto run = [&](uint64_t crash_at, Outcome* out) -> std::string {
    auto device = test::MakeDevice({.size_bytes = 8 << 20});
    auto store = PipelinedStore::Create(StoreCfg(), device.get()).ValueOrDie();
    std::vector<EntryId> all_keys = kept_keys;
    all_keys.insert(all_keys.end(), handed_keys.begin(), handed_keys.end());
    TrainStore(store.get(), all_keys, 1, 3, 0.5f);
    Checkpoint(store.get(), 3);
    std::vector<std::vector<float>> kept_values;
    for (EntryId key : kept_keys) {
      kept_values.push_back(store->Peek(key).ValueOrDie());
    }
    std::vector<bool> full(kNumRoutingSlots, true);

    device->EnableEventTrace(crash_at == 0);
    pmem::FaultPlan plan;
    plan.crash_at = crash_at;
    device->InstallFaultPlan(plan);
    const uint64_t base = device->persist_events();

    (void)store->SetOwnedSlots(1, full, {});
    (void)store->SetOwnedSlots(2, BitmapOfKeys(kept_keys), {});
    (void)store->PurgeSlots(BitmapOfKeys(handed_keys), {});

    if (crash_at == 0) {
      out->total_events = device->persist_events() - base;
      out->sites = device->TakeEventTrace();
      if (device->crashed()) return "fault fired during the reference run";
    }
    device->SimulateCrash();
    device->ClearFault();
    Status recovered = store->RecoverFromCrash();
    if (!recovered.ok()) return "recovery failed: " + recovered.ToString();

    for (size_t i = 0; i < kept_keys.size(); ++i) {
      auto peek = store->Peek(kept_keys[i]);
      if (!peek.ok() || peek.value() != kept_values[i]) {
        return "kept key " + std::to_string(kept_keys[i]) + " lost/corrupted";
      }
    }
    out->handed_present = 0;
    for (EntryId key : handed_keys) {
      if (store->Peek(key).ok()) ++out->handed_present;
    }
    if (out->handed_present != 0 &&
        out->handed_present != handed_keys.size()) {
      return "torn purge: " + std::to_string(out->handed_present) + "/" +
             std::to_string(handed_keys.size()) + " handed-off keys remain";
    }
    return "";
  };

  Outcome reference;
  ASSERT_EQ(run(0, &reference), "");
  ASSERT_GT(reference.total_events, 0u);
  size_t gc_events = 0;
  for (const auto& site : reference.sites) {
    if (site.find("migrate-gc") != std::string::npos) ++gc_events;
  }
  EXPECT_GT(gc_events, 0u);
  EXPECT_EQ(reference.handed_present, 0u);

  bool dropped = false;
  for (uint64_t e = 1; e <= reference.total_events; ++e) {
    Outcome out;
    const std::string violation = run(e, &out);
    EXPECT_EQ(violation, "")
        << "crash at event " << e << " (site " << reference.sites[e - 1]
        << ")";
    const bool gone = out.handed_present == 0;
    EXPECT_FALSE(dropped && !gone) << "purge un-committed at event " << e;
    dropped = dropped || gone;
  }
  EXPECT_TRUE(dropped);
}

// ---------- Cluster-level elastic membership ----------

ps::ClusterOptions ClusterCfg(uint32_t nodes) {
  ps::ClusterOptions options;
  options.num_nodes = nodes;
  options.kind = storage::StoreKind::kPipelined;
  options.store.dim = kDim;
  options.store.optimizer.kind = storage::OptimizerKind::kSgd;
  options.store.optimizer.learning_rate = 0.1f;
  options.pmem_bytes_per_node = 16ULL << 20;
  return options;
}

Status TrainBatches(ps::PsClient* client, const std::vector<EntryId>& keys,
                    uint64_t from, uint64_t to) {
  std::vector<float> weights(keys.size() * kDim);
  for (uint64_t batch = from; batch <= to; ++batch) {
    OE_RETURN_IF_ERROR(
        client->Pull(keys.data(), keys.size(), batch, weights.data()));
    OE_RETURN_IF_ERROR(client->FinishPullPhase(batch));
    std::vector<float> grads(keys.size() * kDim,
                             0.01f * static_cast<float>(batch));
    OE_RETURN_IF_ERROR(
        client->Push(keys.data(), keys.size(), grads.data(), batch));
  }
  return Status::OK();
}

std::vector<std::vector<float>> PeekAll(ps::PsClient* client,
                                        const std::vector<EntryId>& keys) {
  std::vector<std::vector<float>> values;
  values.reserve(keys.size());
  for (EntryId key : keys) values.push_back(client->Peek(key).ValueOrDie());
  return values;
}

std::vector<uint32_t> SlotsForResidue(uint32_t mod, uint32_t residue) {
  std::vector<uint32_t> slots;
  for (uint32_t s = residue; s < kNumRoutingSlots; s += mod) slots.push_back(s);
  return slots;
}

uint64_t TotalWrongOwnerRejects(ps::PsCluster* cluster) {
  uint64_t total = 0;
  for (uint32_t node = 0; node < cluster->num_nodes(); ++node) {
    if (cluster->service(node) != nullptr) {
      total += cluster->service(node)->WrongOwnerRejects();
    }
  }
  return total;
}

// The acceptance workload: 4 -> 8 scale-out under concurrent training and
// serving load on a lossy, duplicating, delaying network. The final model
// must be bit-identical to a no-migration golden run (zero lost or
// double-applied pushes across every redirect), and every mid-migration
// MultiGet must be a consistent snapshot.
TEST(ElasticClusterTest, ExpandFourToEightUnderLoadMatchesGoldenRun) {
  std::vector<EntryId> keys(192);
  std::iota(keys.begin(), keys.end(), 1);

  auto golden = ps::PsCluster::Create(ClusterCfg(4)).ValueOrDie();
  ASSERT_TRUE(TrainBatches(&golden->client(), keys, 1, 5).ok());
  ASSERT_TRUE(golden->client().RequestCheckpoint(5).ok());
  ASSERT_TRUE(golden->client().DrainCheckpoints().ok());
  ASSERT_TRUE(TrainBatches(&golden->client(), keys, 6, 16).ok());
  ASSERT_TRUE(golden->client().RequestCheckpoint(16).ok());
  ASSERT_TRUE(golden->client().DrainCheckpoints().ok());
  const auto golden_values = PeekAll(&golden->client(), keys);

  ps::ClusterOptions options = ClusterCfg(4);
  options.serving_cache_bytes = 32 << 10;
  options.inject_net_faults = true;
  options.net_fault_seed = 91;
  options.net_fault_spec.drop_rate = 0.1;
  options.net_fault_spec.fail_response_rate = 0.1;
  options.net_fault_spec.duplicate_rate = 0.15;
  options.net_fault_spec.delay_rate = 0.1;
  options.net_fault_spec.delay_ms = 1;
  options.rpc_options.max_retries = 50;
  options.rpc_options.backoff_initial_ms = 0;
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();

  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 1, 5).ok());
  ASSERT_TRUE(cluster->client().RequestCheckpoint(5).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());
  const auto snapshot5 = PeekAll(&cluster->client(), keys);

  // Trainer and serving reader run through the whole membership change.
  auto trainer_client = cluster->NewClient();
  Status trainer_status;
  std::thread trainer([&] {
    trainer_status = TrainBatches(trainer_client.get(), keys, 6, 16);
  });

  auto serving_client = cluster->NewClient();
  std::atomic<bool> stop_serving{false};
  std::string serving_violation;
  int serving_snapshot_reads = 0;
  std::thread server([&] {
    std::vector<float> out(keys.size() * kDim);
    std::vector<uint8_t> found(keys.size());
    while (!stop_serving.load()) {
      uint64_t cp = 0;
      const Status status = serving_client->MultiGet(
          keys.data(), keys.size(), out.data(), found.data(), &cp);
      if (!status.ok()) continue;  // retry budget dry on the lossy schedule
      if (cp != 5) {
        serving_violation = "unexpected snapshot version " +
                            std::to_string(cp) + " before checkpoint 16";
        return;
      }
      ++serving_snapshot_reads;
      for (size_t i = 0; i < keys.size(); ++i) {
        const std::vector<float> got(
            out.begin() + static_cast<long>(i) * kDim,
            out.begin() + static_cast<long>(i + 1) * kDim);
        if (found[i] != 1 || got != snapshot5[i]) {
          serving_violation =
              "torn read of key " + std::to_string(keys[i]);
          return;
        }
      }
    }
  });

  // 4 -> 8: provision four nodes, then hand each its round-robin-of-8
  // residue class so the final table matches MakeRoundRobin(8).
  for (uint32_t n = 0; n < 4; ++n) {
    auto added = cluster->AddNode();
    ASSERT_TRUE(added.ok());
    EXPECT_EQ(added.value(), 4 + n);
  }
  for (uint32_t target = 4; target < 8; ++target) {
    ASSERT_TRUE(
        cluster->MigrateSlots(SlotsForResidue(8, target), target).ok());
  }

  trainer.join();
  stop_serving.store(true);
  server.join();
  EXPECT_TRUE(trainer_status.ok()) << trainer_status.ToString();
  EXPECT_EQ(serving_violation, "");
  EXPECT_GT(serving_snapshot_reads, 0);

  ASSERT_TRUE(cluster->client().RequestCheckpoint(16).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());

  // Epochs: 1 (init) + 4 AddNode + 4 migration legs.
  EXPECT_EQ(cluster->directory()->Current()->epoch, 9u);
  EXPECT_EQ(cluster->directory()->Current()->active.size(), 8u);
  // Stale routes really bounced and were retried.
  EXPECT_GT(TotalWrongOwnerRejects(cluster.get()), 0u);
  // Data moved: every node owns part of the model, nothing was lost or
  // duplicated (the key universe is partitioned).
  uint64_t total_entries = 0;
  for (uint32_t node = 0; node < 8; ++node) {
    const size_t count = cluster->store(node)->EntryCount();
    EXPECT_GT(count, 0u) << "node " << node;
    total_entries += count;
  }
  EXPECT_EQ(total_entries, keys.size());
  EXPECT_EQ(cluster->client().ClusterCheckpoint().ValueOrDie(), 16u);

  // The acceptance bar: per-key logical Peek comparison, bit-identical.
  const auto values = PeekAll(&cluster->client(), keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(values[i], golden_values[i]) << "key " << keys[i];
  }
}

// Scale-in mirror: 8 -> 4 drain under the same faulty schedule.
TEST(ElasticClusterTest, DrainEightToFourUnderLoadMatchesGoldenRun) {
  std::vector<EntryId> keys(192);
  std::iota(keys.begin(), keys.end(), 1);

  auto golden = ps::PsCluster::Create(ClusterCfg(8)).ValueOrDie();
  ASSERT_TRUE(TrainBatches(&golden->client(), keys, 1, 4).ok());
  ASSERT_TRUE(golden->client().RequestCheckpoint(4).ok());
  ASSERT_TRUE(golden->client().DrainCheckpoints().ok());
  ASSERT_TRUE(TrainBatches(&golden->client(), keys, 5, 12).ok());
  const auto golden_values = PeekAll(&golden->client(), keys);

  ps::ClusterOptions options = ClusterCfg(8);
  options.inject_net_faults = true;
  options.net_fault_seed = 17;
  options.net_fault_spec.drop_rate = 0.1;
  options.net_fault_spec.duplicate_rate = 0.15;
  options.net_fault_spec.fail_response_rate = 0.1;
  options.rpc_options.max_retries = 50;
  options.rpc_options.backoff_initial_ms = 0;
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();

  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 1, 4).ok());
  ASSERT_TRUE(cluster->client().RequestCheckpoint(4).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());

  auto trainer_client = cluster->NewClient();
  Status trainer_status;
  std::thread trainer([&] {
    trainer_status = TrainBatches(trainer_client.get(), keys, 5, 12);
  });
  for (uint32_t node = 7; node >= 4; --node) {
    ASSERT_TRUE(cluster->DrainNode(node).ok()) << "node " << node;
  }
  trainer.join();
  EXPECT_TRUE(trainer_status.ok()) << trainer_status.ToString();

  const auto table = cluster->directory()->Current();
  EXPECT_EQ(table->active, std::vector<net::NodeId>({0, 1, 2, 3}));
  for (uint32_t node = 4; node < 8; ++node) {
    EXPECT_EQ(cluster->store(node)->EntryCount(), 0u) << "node " << node;
    EXPECT_TRUE(table->SlotsOwnedBy(node).empty());
  }
  EXPECT_GT(TotalWrongOwnerRejects(cluster.get()), 0u);

  const auto values = PeekAll(&cluster->client(), keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(values[i], golden_values[i]) << "key " << keys[i];
  }
  // Broadcasts now skip the drained nodes: a fresh checkpoint needs only
  // the active four to publish.
  ASSERT_TRUE(cluster->client().RequestCheckpoint(12).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());
  EXPECT_EQ(cluster->client().ClusterCheckpoint().ValueOrDie(), 12u);
}

// A client whose cached table predates the membership change must recover
// transparently: kWrongOwner -> refresh -> re-route, exactly-once.
TEST(ElasticClusterTest, StaleClientRetriesTransparentlyAfterMigration) {
  auto cluster = ps::PsCluster::Create(ClusterCfg(4)).ValueOrDie();
  std::vector<EntryId> keys(64);
  std::iota(keys.begin(), keys.end(), 1);
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 1, 3).ok());
  ASSERT_TRUE(cluster->client().RequestCheckpoint(3).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());

  auto stale = cluster->NewClient();
  ASSERT_TRUE(TrainBatches(stale.get(), keys, 4, 4).ok());
  const uint64_t epoch_before = stale->router().epoch();

  ASSERT_EQ(cluster->AddNode().ValueOrDie(), 4u);
  ASSERT_TRUE(cluster->MigrateSlots(SlotsForResidue(2, 0), 4).ok());
  const uint64_t rejects_before = TotalWrongOwnerRejects(cluster.get());

  // The stale client still routes half its keys at the old owners.
  ASSERT_TRUE(TrainBatches(stale.get(), keys, 5, 5).ok());
  EXPECT_GT(TotalWrongOwnerRejects(cluster.get()), rejects_before);
  EXPECT_GT(stale->router().epoch(), epoch_before);

  // Exactly-once across the redirect: the same workload on a golden
  // cluster (same batches, no migration) gives bit-identical weights.
  auto golden = ps::PsCluster::Create(ClusterCfg(4)).ValueOrDie();
  ASSERT_TRUE(TrainBatches(&golden->client(), keys, 1, 3).ok());
  ASSERT_TRUE(golden->client().RequestCheckpoint(3).ok());
  ASSERT_TRUE(golden->client().DrainCheckpoints().ok());
  ASSERT_TRUE(TrainBatches(&golden->client(), keys, 4, 5).ok());
  const auto golden_values = PeekAll(&golden->client(), keys);
  const auto values = PeekAll(&cluster->client(), keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(values[i], golden_values[i]) << "key " << keys[i];
  }
}

// Serving reads issued at every phase of a live migration (sealed,
// exported, imported, published) must be complete, version-consistent
// snapshots — never torn, never mixing checkpoints.
TEST(ElasticClusterTest, MultiGetConsistentAtEveryMigrationPhase) {
  ps::ClusterOptions options = ClusterCfg(4);
  options.serving_cache_bytes = 32 << 10;
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();
  std::vector<EntryId> keys(64);
  std::iota(keys.begin(), keys.end(), 1);
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 1, 5).ok());
  ASSERT_TRUE(cluster->client().RequestCheckpoint(5).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());
  const auto snapshot = PeekAll(&cluster->client(), keys);
  // Live state moves past the checkpoint so torn reads would be visible.
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 6, 7).ok());

  ASSERT_EQ(cluster->AddNode().ValueOrDie(), 4u);
  auto reader = cluster->NewClient();
  std::vector<std::string> phases;
  std::string violation;
  cluster->set_migration_hook([&](const std::string& phase) {
    phases.push_back(phase);
    std::vector<float> out(keys.size() * kDim);
    std::vector<uint8_t> found(keys.size());
    uint64_t cp = 0;
    const Status status = reader->MultiGet(keys.data(), keys.size(),
                                           out.data(), found.data(), &cp);
    if (!status.ok()) {
      violation = phase + ": " + status.ToString();
      return;
    }
    if (cp != 5) {
      violation = phase + ": snapshot version " + std::to_string(cp);
      return;
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      const std::vector<float> got(
          out.begin() + static_cast<long>(i) * kDim,
          out.begin() + static_cast<long>(i + 1) * kDim);
      if (found[i] != 1 || got != snapshot[i]) {
        violation = phase + ": torn key " + std::to_string(keys[i]);
        return;
      }
    }
  });
  // One source leg (node 1's slots), so each phase fires exactly once.
  ASSERT_TRUE(
      cluster
          ->MigrateSlots(cluster->directory()->Current()->SlotsOwnedBy(1), 4)
          .ok());
  EXPECT_EQ(violation, "");
  EXPECT_EQ(phases, std::vector<std::string>(
                        {"sealed", "exported", "imported", "published"}));
}

// ---------- Kill-mid-migration rollback ----------

// Kill the source at the "exported" phase: the migration aborts, the
// routing epoch stays put, the target gets nothing, and after restart +
// recovery the same migration succeeds with the data intact.
TEST(ElasticClusterTest, SourceKillMidMigrationRollsBackAndRetries) {
  auto cluster = ps::PsCluster::Create(ClusterCfg(4)).ValueOrDie();
  std::vector<EntryId> keys(96);
  std::iota(keys.begin(), keys.end(), 1);
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 1, 3).ok());
  ASSERT_TRUE(cluster->client().RequestCheckpoint(3).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());
  const auto checkpointed = PeekAll(&cluster->client(), keys);

  ASSERT_EQ(cluster->AddNode().ValueOrDie(), 4u);
  const uint64_t epoch_before = cluster->directory()->Current()->epoch;
  const auto slots = cluster->directory()->Current()->SlotsOwnedBy(0);
  ASSERT_FALSE(slots.empty());

  cluster->set_migration_hook([&](const std::string& phase) {
    if (phase == "exported") {
      ASSERT_TRUE(cluster->KillNode(0).ok());
    }
  });
  const Status aborted = cluster->MigrateSlots(slots, 4);
  EXPECT_EQ(aborted.code(), StatusCode::kAborted) << aborted.ToString();
  cluster->set_migration_hook(nullptr);

  // Rolled back to the pre-migration epoch: no routing change, no import.
  EXPECT_EQ(cluster->directory()->Current()->epoch, epoch_before);
  EXPECT_EQ(cluster->store(4)->EntryCount(), 0u);
  EXPECT_TRUE(cluster->node_down(0));

  ASSERT_TRUE(cluster->RestartDownNodes().ok());
  ASSERT_TRUE(cluster->client().Recover().ok());
  const auto recovered = PeekAll(&cluster->client(), keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(recovered[i], checkpointed[i]) << "key " << keys[i];
  }

  // The retried migration completes and the moved range still serves.
  ASSERT_TRUE(cluster->MigrateSlots(slots, 4).ok());
  EXPECT_EQ(cluster->directory()->Current()->epoch, epoch_before + 1);
  EXPECT_GT(cluster->store(4)->EntryCount(), 0u);
  const auto after = PeekAll(&cluster->client(), keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(after[i], checkpointed[i]) << "key " << keys[i];
  }
}

// Kill the target after it durably committed its expanded ownership but
// before the routing publish: the epoch never moves, so the restarted
// target's ownership reconcile must purge the half-migrated range its
// stale root still claims.
TEST(ElasticClusterTest, TargetKillAfterImportReconcilesOnRestart) {
  auto cluster = ps::PsCluster::Create(ClusterCfg(4)).ValueOrDie();
  std::vector<EntryId> keys(96);
  std::iota(keys.begin(), keys.end(), 1);
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 1, 3).ok());
  ASSERT_TRUE(cluster->client().RequestCheckpoint(3).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());
  const auto checkpointed = PeekAll(&cluster->client(), keys);

  ASSERT_EQ(cluster->AddNode().ValueOrDie(), 4u);
  const uint64_t epoch_before = cluster->directory()->Current()->epoch;
  const auto slots = cluster->directory()->Current()->SlotsOwnedBy(1);

  cluster->set_migration_hook([&](const std::string& phase) {
    if (phase == "imported") {
      ASSERT_TRUE(cluster->KillNode(4).ok());
    }
  });
  EXPECT_EQ(cluster->MigrateSlots(slots, 4).code(), StatusCode::kAborted);
  cluster->set_migration_hook(nullptr);
  EXPECT_EQ(cluster->directory()->Current()->epoch, epoch_before);

  // Restart: the reconcile rewrites the stale root against the published
  // table and drops the imported-but-never-routed records.
  ASSERT_TRUE(cluster->RestartDownNodes().ok());
  EXPECT_EQ(cluster->store(4)->EntryCount(), 0u);
  ASSERT_TRUE(cluster->client().Recover().ok());
  const auto recovered = PeekAll(&cluster->client(), keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(recovered[i], checkpointed[i]) << "key " << keys[i];
  }
  // The source was unsealed by the abort: training proceeds normally.
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 4, 5).ok());
  // And a retried migration lands.
  ASSERT_TRUE(cluster->MigrateSlots(slots, 4).ok());
  EXPECT_GT(cluster->store(4)->EntryCount(), 0u);
}

// Kill the source right after the publish: the migration is committed
// (the epoch moved), and the restarted source's reconcile garbage-collects
// the handed-off range its stale root still claims.
TEST(ElasticClusterTest, SourceKillAfterPublishCompletesViaReconcile) {
  auto cluster = ps::PsCluster::Create(ClusterCfg(4)).ValueOrDie();
  std::vector<EntryId> keys(96);
  std::iota(keys.begin(), keys.end(), 1);
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 1, 3).ok());
  ASSERT_TRUE(cluster->client().RequestCheckpoint(3).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());
  const auto checkpointed = PeekAll(&cluster->client(), keys);

  ASSERT_EQ(cluster->AddNode().ValueOrDie(), 4u);
  const uint64_t epoch_before = cluster->directory()->Current()->epoch;
  const auto slots = cluster->directory()->Current()->SlotsOwnedBy(2);

  cluster->set_migration_hook([&](const std::string& phase) {
    if (phase == "published") {
      ASSERT_TRUE(cluster->KillNode(2).ok());
    }
  });
  // Publish happened: the migration is committed despite the source death.
  ASSERT_TRUE(cluster->MigrateSlots(slots, 4).ok());
  cluster->set_migration_hook(nullptr);
  EXPECT_EQ(cluster->directory()->Current()->epoch, epoch_before + 1);
  EXPECT_GT(cluster->store(4)->EntryCount(), 0u);

  ASSERT_TRUE(cluster->RestartDownNodes().ok());
  ASSERT_TRUE(cluster->client().Recover().ok());
  // The restarted source no longer hoards the handed-off range: its keys
  // now live (only) on the target, and the model reads back intact.
  const auto table = cluster->directory()->Current();
  for (EntryId key : keys) {
    if (table->owners[SlotOfKey(key)] == 4) {
      EXPECT_FALSE(cluster->store(2)->Peek(key).ok()) << "key " << key;
    }
  }
  const auto recovered = PeekAll(&cluster->client(), keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(recovered[i], checkpointed[i]) << "key " << keys[i];
  }
}

// ---------- Hot keys and membership ----------

// Hot-key replicas are epoch-pinned: migration moves everything else off a
// replica host but leaves the replicas in place and serving, and a host of
// pinned replicas refuses to drain.
TEST(ElasticClusterTest, HotReplicasPinnedAcrossMigration) {
  ps::ClusterOptions options = ClusterCfg(4);
  options.hot_replicate_keys = 2;  // keys 0 and 1
  options.hot_replicas = 2;
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();
  std::vector<EntryId> keys(48);
  std::iota(keys.begin(), keys.end(), 0);  // includes the hot ids 0, 1
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 1, 3).ok());
  ASSERT_TRUE(cluster->client().RequestCheckpoint(3).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());

  const auto* placement = cluster->placement();
  ASSERT_NE(placement, nullptr);
  const uint32_t host = placement->ReplicaNode(0, 0);

  ASSERT_EQ(cluster->AddNode().ValueOrDie(), 4u);
  const auto slots = cluster->directory()->Current()->SlotsOwnedBy(host);
  ASSERT_TRUE(cluster->MigrateSlots(slots, 4).ok());

  // The replica host kept exactly its pinned hot copies.
  for (EntryId hot : placement->hot_keys()) {
    if (placement->is_replica(host, hot)) {
      EXPECT_TRUE(cluster->store(host)->Peek(hot).ok()) << "hot " << hot;
    }
  }
  // Replicas stay bit-identical through continued training (pushes still
  // fan to the pinned set under one sequence number).
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 4, 6).ok());
  for (EntryId hot : placement->hot_keys()) {
    const auto first =
        cluster->store(placement->ReplicaNode(hot, 0))->Peek(hot).ValueOrDie();
    for (uint32_t r = 1; r < placement->replicas(); ++r) {
      EXPECT_EQ(
          cluster->store(placement->ReplicaNode(hot, r))->Peek(hot).ValueOrDie(),
          first)
          << "hot " << hot << " replica " << r;
    }
  }
  EXPECT_EQ(cluster->DrainNode(host).code(), StatusCode::kFailedPrecondition);

  // Golden comparison: the same workload without any membership change.
  ps::ClusterOptions golden_options = ClusterCfg(4);
  golden_options.hot_replicate_keys = 2;
  golden_options.hot_replicas = 2;
  auto golden = ps::PsCluster::Create(golden_options).ValueOrDie();
  ASSERT_TRUE(TrainBatches(&golden->client(), keys, 1, 3).ok());
  ASSERT_TRUE(golden->client().RequestCheckpoint(3).ok());
  ASSERT_TRUE(golden->client().DrainCheckpoints().ok());
  ASSERT_TRUE(TrainBatches(&golden->client(), keys, 4, 6).ok());
  const auto golden_values = PeekAll(&golden->client(), keys);
  const auto values = PeekAll(&cluster->client(), keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(values[i], golden_values[i]) << "key " << keys[i];
  }
}

// Satellite regression: a restarted node rebuilds its ServingCache and
// re-warms its hot-key replicas — afterwards it serves bit-identical
// replica reads and snapshot MultiGets.
TEST(ElasticClusterTest, RestartedNodeRebuildsServingCacheAndReplicas) {
  ps::ClusterOptions options = ClusterCfg(4);
  options.hot_replicate_keys = 4;
  options.hot_replicas = 2;
  options.serving_cache_bytes = 32 << 10;
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();
  std::vector<EntryId> keys(32);
  std::iota(keys.begin(), keys.end(), 0);
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 1, 3).ok());
  ASSERT_TRUE(cluster->client().RequestCheckpoint(3).ok());
  ASSERT_TRUE(cluster->client().DrainCheckpoints().ok());

  const auto* placement = cluster->placement();
  ASSERT_NE(placement, nullptr);
  const uint32_t victim = placement->ReplicaNode(0, 0);

  // Snapshot serving state before the crash.
  std::vector<float> out(keys.size() * kDim);
  std::vector<uint8_t> found(keys.size());
  uint64_t cp = 0;
  ASSERT_TRUE(cluster->client()
                  .MultiGet(keys.data(), keys.size(), out.data(),
                            found.data(), &cp)
                  .ok());
  ASSERT_EQ(cp, 3u);
  const std::vector<float> serving_before = out;

  ASSERT_TRUE(cluster->KillNode(victim).ok());
  ASSERT_TRUE(cluster->RestartNode(victim).ok());
  // Recover() rolls every shard to the cluster checkpoint and re-warms the
  // hot-key replicas through the deterministic first-touch path.
  ASSERT_TRUE(cluster->client().Recover().ok());

  // The restarted node has a fresh serving cache in front of its store.
  ASSERT_NE(cluster->service(victim), nullptr);
  EXPECT_NE(cluster->service(victim)->serving_cache(), nullptr);

  // Replica reads off the restarted node are bit-identical to its peers'.
  for (EntryId hot : placement->hot_keys()) {
    if (!placement->is_replica(victim, hot)) continue;
    const auto mine = cluster->store(victim)->Peek(hot).ValueOrDie();
    for (uint32_t r = 0; r < placement->replicas(); ++r) {
      const uint32_t peer = placement->ReplicaNode(hot, r);
      if (peer == victim) continue;
      EXPECT_EQ(cluster->store(peer)->Peek(hot).ValueOrDie(), mine)
          << "hot " << hot;
    }
  }
  // And the serving tier returns the identical snapshot.
  std::fill(out.begin(), out.end(), -1.0f);
  ASSERT_TRUE(cluster->client()
                  .MultiGet(keys.data(), keys.size(), out.data(),
                            found.data(), &cp)
                  .ok());
  EXPECT_EQ(cp, 3u);
  EXPECT_EQ(out, serving_before);
  // Replicas keep agreeing through post-restart training.
  ASSERT_TRUE(TrainBatches(&cluster->client(), keys, 4, 5).ok());
  for (EntryId hot : placement->hot_keys()) {
    const auto first =
        cluster->store(placement->ReplicaNode(hot, 0))->Peek(hot).ValueOrDie();
    for (uint32_t r = 1; r < placement->replicas(); ++r) {
      EXPECT_EQ(
          cluster->store(placement->ReplicaNode(hot, r))->Peek(hot).ValueOrDie(),
          first)
          << "hot " << hot;
    }
  }
}

// ---------- Membership validation ----------

TEST(ElasticClusterTest, MembershipValidation) {
  auto cluster = ps::PsCluster::Create(ClusterCfg(2)).ValueOrDie();

  // Unknown / down targets are rejected up front.
  EXPECT_EQ(cluster->MigrateSlots({0}, 5).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(cluster->KillNode(1).ok());
  EXPECT_EQ(cluster->MigrateSlots({0}, 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster->DrainNode(1).code(), StatusCode::kFailedPrecondition);
  // With the only peer down there is nowhere to drain to.
  EXPECT_EQ(cluster->DrainNode(0).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cluster->RestartDownNodes().ok());

  // Draining an untrained node is legal (empty ranges need no checkpoint).
  ASSERT_TRUE(cluster->DrainNode(1).ok());
  EXPECT_EQ(cluster->directory()->Current()->active,
            std::vector<net::NodeId>({0}));
  // Already-inactive and last-active nodes refuse to drain.
  EXPECT_EQ(cluster->DrainNode(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster->DrainNode(0).code(), StatusCode::kFailedPrecondition);

  // Out-of-range slot ids are rejected.
  ASSERT_EQ(cluster->AddNode().ValueOrDie(), 2u);
  EXPECT_EQ(cluster->MigrateSlots({kNumRoutingSlots}, 2).code(),
            StatusCode::kInvalidArgument);
  // Migrating slots a node already owns is a no-op, not an error.
  EXPECT_TRUE(cluster->MigrateSlots(SlotsForResidue(2, 0), 0).ok());
}

}  // namespace
}  // namespace oe

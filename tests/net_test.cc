#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/message.h"
#include "net/tcp.h"
#include "net/transport.h"

namespace oe::net {
namespace {

TEST(MessageTest, WriterReaderRoundTrip) {
  Buffer buffer;
  Writer writer(&buffer);
  writer.PutU32(7);
  writer.PutU64(1ULL << 40);
  writer.PutFloat(3.5f);
  std::vector<uint64_t> keys = {1, 2, 3};
  writer.PutU64Span(keys.data(), keys.size());
  std::vector<float> floats = {0.5f, -0.5f};
  writer.PutFloatSpan(floats.data(), floats.size());
  writer.PutString("hello");

  Reader reader(buffer);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  float f = 0;
  std::vector<uint64_t> keys_out;
  std::vector<float> floats_out;
  std::string s;
  ASSERT_TRUE(reader.GetU32(&u32).ok());
  ASSERT_TRUE(reader.GetU64(&u64).ok());
  ASSERT_TRUE(reader.GetFloat(&f).ok());
  ASSERT_TRUE(reader.GetU64Span(&keys_out).ok());
  ASSERT_TRUE(reader.GetFloatSpan(&floats_out).ok());
  ASSERT_TRUE(reader.GetString(&s).ok());
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 1ULL << 40);
  EXPECT_FLOAT_EQ(f, 3.5f);
  EXPECT_EQ(keys_out, keys);
  EXPECT_EQ(floats_out, floats);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(MessageTest, TruncatedInputRejected) {
  Buffer buffer;
  Writer writer(&buffer);
  writer.PutU32(100);  // claims a 100-element span with no payload
  Reader reader(buffer);
  std::vector<uint64_t> out;
  EXPECT_FALSE(reader.GetU64Span(&out).ok());
}

TEST(MessageTest, EmptyReader) {
  Reader reader(nullptr, 0);
  uint32_t v = 0;
  EXPECT_FALSE(reader.GetU32(&v).ok());
}

TEST(InProcTransportTest, EchoCall) {
  InProcTransport transport;
  transport.RegisterNode(3, [](uint32_t method, const Buffer& request,
                               Buffer* response) {
    EXPECT_EQ(method, 9u);
    *response = request;
    return Status::OK();
  });
  Buffer request = {1, 2, 3};
  Buffer response;
  ASSERT_TRUE(transport.Call(3, 9, request, &response).ok());
  EXPECT_EQ(response, request);
  EXPECT_EQ(transport.stats().requests.load(), 1u);
  EXPECT_EQ(transport.stats().bytes_sent.load(), 3u);
}

TEST(InProcTransportTest, UnknownNodeFails) {
  InProcTransport transport;
  Buffer response;
  EXPECT_TRUE(transport.Call(1, 0, {}, &response).IsNotFound());
}

TEST(InProcTransportTest, HandlerErrorPropagates) {
  InProcTransport transport;
  transport.RegisterNode(0, [](uint32_t, const Buffer&, Buffer*) {
    return Status::Aborted("nope");
  });
  Buffer response;
  auto status = transport.Call(0, 0, {}, &response);
  EXPECT_EQ(status.code(), StatusCode::kAborted);
}

TEST(InProcTransportTest, UnregisterRemovesNode) {
  InProcTransport transport;
  transport.RegisterNode(0, [](uint32_t, const Buffer&, Buffer* response) {
    response->push_back(1);
    return Status::OK();
  });
  Buffer response;
  ASSERT_TRUE(transport.Call(0, 0, {}, &response).ok());
  transport.UnregisterNode(0);
  EXPECT_FALSE(transport.Call(0, 0, {}, &response).ok());
}

TEST(ParallelCallTest, FansOutAndReassembles) {
  InProcTransport transport;
  for (NodeId node = 0; node < 6; ++node) {
    transport.RegisterNode(node, [node](uint32_t method, const Buffer& request,
                                        Buffer* response) {
      *response = request;
      response->push_back(static_cast<uint8_t>(node));
      response->push_back(static_cast<uint8_t>(method));
      return Status::OK();
    });
  }
  std::vector<Buffer> requests(6);
  std::vector<Buffer> responses(6);
  std::vector<RpcCall> calls(6);
  for (NodeId node = 0; node < 6; ++node) {
    requests[node] = {static_cast<uint8_t>(100 + node)};
    calls[node].node = node;
    calls[node].method = 7 + node;
    calls[node].request = &requests[node];
    calls[node].response = &responses[node];
  }
  ASSERT_TRUE(transport.ParallelCall(&calls).ok());
  for (NodeId node = 0; node < 6; ++node) {
    Buffer expected = {static_cast<uint8_t>(100 + node),
                       static_cast<uint8_t>(node),
                       static_cast<uint8_t>(7 + node)};
    EXPECT_EQ(responses[node], expected) << "node " << node;
    EXPECT_TRUE(calls[node].status.ok());
  }
}

TEST(ParallelCallTest, FirstErrorInCallOrderWins) {
  InProcTransport transport;
  transport.RegisterNode(0, [](uint32_t, const Buffer&, Buffer*) {
    // Finishes last but sits first in the call array.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Status::Aborted("first");
  });
  transport.RegisterNode(1, [](uint32_t, const Buffer&, Buffer*) {
    return Status::Internal("second");
  });
  transport.RegisterNode(2, [](uint32_t, const Buffer&, Buffer*) {
    return Status::OK();
  });
  std::vector<Buffer> responses(3);
  std::vector<RpcCall> calls(3);
  for (NodeId node = 0; node < 3; ++node) {
    calls[node].node = node;
    calls[node].response = &responses[node];
  }
  auto status = transport.ParallelCall(&calls);
  EXPECT_EQ(status.code(), StatusCode::kAborted);
  EXPECT_NE(status.message().find("first"), std::string::npos);
  // Every per-call status is still individually reported.
  EXPECT_EQ(calls[1].status.code(), StatusCode::kInternal);
  EXPECT_TRUE(calls[2].status.ok());
}

TEST(ParallelCallTest, CallsActuallyOverlap) {
  InProcTransport transport;
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (NodeId node = 0; node < 4; ++node) {
    transport.RegisterNode(node, [&](uint32_t, const Buffer&, Buffer*) {
      const int now = in_flight.fetch_add(1) + 1;
      int seen = max_in_flight.load();
      while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      in_flight.fetch_sub(1);
      return Status::OK();
    });
  }
  std::vector<Buffer> responses(4);
  std::vector<RpcCall> calls(4);
  for (NodeId node = 0; node < 4; ++node) {
    calls[node].node = node;
    calls[node].response = &responses[node];
  }
  ASSERT_TRUE(transport.ParallelCall(&calls).ok());
  EXPECT_GT(max_in_flight.load(), 1);
}

TEST(TcpTest, RoundTripOverLoopback) {
  auto server = TcpServer::Start(0, [](uint32_t method,
                                       const Buffer& request,
                                       Buffer* response) {
    Writer writer(response);
    writer.PutU32(method * 2);
    writer.PutRaw(request.data(), request.size());
    return Status::OK();
  }).ValueOrDie();

  TcpTransport transport;
  transport.AddNode(0, "127.0.0.1", server->port());
  Buffer request = {9, 8, 7};
  Buffer response;
  ASSERT_TRUE(transport.Call(0, 21, request, &response).ok());
  Reader reader(response);
  uint32_t doubled = 0;
  ASSERT_TRUE(reader.GetU32(&doubled).ok());
  EXPECT_EQ(doubled, 42u);
  std::vector<uint8_t> echoed(3);
  ASSERT_TRUE(reader.GetRaw(echoed.data(), 3).ok());
  EXPECT_EQ(echoed, std::vector<uint8_t>({9, 8, 7}));
}

TEST(TcpTest, RemoteErrorSurfacesMessage) {
  auto server = TcpServer::Start(0, [](uint32_t, const Buffer&, Buffer*) {
    return Status::InvalidArgument("bad payload");
  }).ValueOrDie();
  TcpTransport transport;
  transport.AddNode(0, "127.0.0.1", server->port());
  Buffer response;
  auto status = transport.Call(0, 1, {}, &response);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bad payload"), std::string::npos);
}

TEST(TcpTest, MultipleSequentialCallsReuseConnection) {
  std::atomic<int> calls{0};
  auto server = TcpServer::Start(0, [&](uint32_t, const Buffer&,
                                        Buffer* response) {
    response->push_back(static_cast<uint8_t>(calls.fetch_add(1)));
    return Status::OK();
  }).ValueOrDie();
  TcpTransport transport;
  transport.AddNode(0, "127.0.0.1", server->port());
  for (int i = 0; i < 5; ++i) {
    Buffer response;
    ASSERT_TRUE(transport.Call(0, 0, {}, &response).ok());
    EXPECT_EQ(response[0], i);
  }
  EXPECT_EQ(calls.load(), 5);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  TcpTransport transport;
  transport.AddNode(0, "127.0.0.1", 1);  // reserved port, nothing listening
  Buffer response;
  EXPECT_FALSE(transport.Call(0, 0, {}, &response).ok());
}

TEST(TcpTest, OversizedPayloadRejectedAtSender) {
  std::atomic<int> calls{0};
  auto server = TcpServer::Start(0, [&](uint32_t, const Buffer& request,
                                        Buffer* response) {
    calls.fetch_add(1);
    *response = request;
    return Status::OK();
  }).ValueOrDie();
  TcpTransport transport;
  transport.AddNode(0, "127.0.0.1", server->port());

  Buffer oversized(kMaxFramePayloadBytes + 1, 0);
  Buffer response;
  auto status = transport.Call(0, 0, oversized, &response);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls.load(), 0);  // rejected before any bytes hit the wire

  // The connection is still usable afterwards: nothing partial was sent.
  Buffer request = {1, 2, 3};
  ASSERT_TRUE(transport.Call(0, 0, request, &response).ok());
  EXPECT_EQ(response, request);
  EXPECT_EQ(calls.load(), 1);
}

TEST(TcpTest, ParallelCallsToOneNodeUseSeparateConnections) {
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  auto server = TcpServer::Start(0, [&](uint32_t, const Buffer& request,
                                        Buffer* response) {
    const int now = in_flight.fetch_add(1) + 1;
    int seen = max_in_flight.load();
    while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    in_flight.fetch_sub(1);
    *response = request;
    return Status::OK();
  }).ValueOrDie();

  TcpTransport transport;
  transport.AddNode(0, "127.0.0.1", server->port());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        Buffer request = {static_cast<uint8_t>(i)};
        Buffer response;
        if (!transport.Call(0, 0, request, &response).ok() ||
            response != request) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // With a per-node connection pool the four client threads overlap instead
  // of serializing on one endpoint mutex.
  EXPECT_GT(max_in_flight.load(), 1);
}

TEST(TcpTest, FinishedConnectionsAreReaped) {
  auto server = TcpServer::Start(0, [](uint32_t, const Buffer& request,
                                       Buffer* response) {
    *response = request;
    return Status::OK();
  }).ValueOrDie();

  for (int i = 0; i < 8; ++i) {
    TcpTransport transport;  // dtor closes its pooled connection
    transport.AddNode(0, "127.0.0.1", server->port());
    Buffer response;
    ASSERT_TRUE(transport.Call(0, 0, {1}, &response).ok());
  }
  // Closed connections unregister themselves; give the server a moment to
  // notice the EOFs.
  for (int spin = 0; spin < 100 && server->ActiveConnections() > 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(server->ActiveConnections(), 1u);
}

// ---------- Retry policy (Transport::Call over CallOnce) ----------

TEST(RetryTest, FlakyHandlerEventuallySucceeds) {
  InProcTransport transport;
  std::atomic<int> attempts{0};
  transport.RegisterNode(0, [&](uint32_t, const Buffer&, Buffer* response) {
    if (attempts.fetch_add(1) < 2) {
      return Status::Unavailable("flaky");
    }
    response->push_back(42);
    return Status::OK();
  });
  RpcOptions options;
  options.max_retries = 3;
  options.backoff_initial_ms = 1;
  transport.set_rpc_options(options);

  Buffer response;
  ASSERT_TRUE(transport.Call(0, 0, {}, &response).ok());
  EXPECT_EQ(response, Buffer({42}));
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(transport.stats().failed_requests.load(), 2u);
  EXPECT_EQ(transport.stats().retries.load(), 2u);
}

TEST(RetryTest, RetriesExhaustedReturnsLastError) {
  InProcTransport transport;
  std::atomic<int> attempts{0};
  transport.RegisterNode(0, [&](uint32_t, const Buffer&, Buffer*) {
    attempts.fetch_add(1);
    return Status::Unavailable("still down");
  });
  RpcOptions options;
  options.max_retries = 2;
  transport.set_rpc_options(options);

  Buffer response;
  auto status = transport.Call(0, 0, {}, &response);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(attempts.load(), 3);  // 1 initial + 2 retries
}

TEST(RetryTest, NonRetryableErrorFailsFast) {
  InProcTransport transport;
  std::atomic<int> attempts{0};
  transport.RegisterNode(0, [&](uint32_t, const Buffer&, Buffer*) {
    attempts.fetch_add(1);
    return Status::Aborted("semantic error");
  });
  RpcOptions options;
  options.max_retries = 5;
  transport.set_rpc_options(options);

  Buffer response;
  EXPECT_EQ(transport.Call(0, 0, {}, &response).code(),
            StatusCode::kAborted);
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(transport.stats().retries.load(), 0u);
}

TEST(RetryTest, DeadlineCapsTheRetryLoop) {
  InProcTransport transport;
  transport.RegisterNode(0, [](uint32_t, const Buffer&, Buffer*) {
    return Status::Unavailable("never up");
  });
  RpcOptions options;
  options.max_retries = 1000000;
  options.deadline_ms = 30;
  options.backoff_initial_ms = 5;
  options.backoff_max_ms = 5;
  transport.set_rpc_options(options);

  Buffer response;
  auto status = transport.Call(0, 0, {}, &response);
  EXPECT_EQ(status.code(), StatusCode::kTimedOut);
  EXPECT_GT(transport.stats().timeouts.load(), 0u);
  EXPECT_GT(transport.stats().retries.load(), 0u);
}

TEST(RetryTest, StaleResponseClearedBetweenAttempts) {
  InProcTransport transport;
  std::atomic<int> attempts{0};
  transport.RegisterNode(0, [&](uint32_t, const Buffer&, Buffer* response) {
    if (attempts.fetch_add(1) == 0) {
      response->push_back(99);  // partial junk before the failure
      return Status::IoError("broke mid-response");
    }
    response->push_back(1);
    return Status::OK();
  });
  RpcOptions options;
  options.max_retries = 1;
  transport.set_rpc_options(options);

  Buffer response;
  ASSERT_TRUE(transport.Call(0, 0, {}, &response).ok());
  EXPECT_EQ(response, Buffer({1}));  // junk from attempt 1 not visible
}

// ---------- ParallelCall error aggregation ----------

TEST(ParallelCallTest, AggregatesAllFailingNodes) {
  InProcTransport transport;
  transport.RegisterNode(0, [](uint32_t, const Buffer&, Buffer*) {
    return Status::OK();
  });
  transport.RegisterNode(1, [](uint32_t, const Buffer&, Buffer*) {
    return Status::Aborted("node one broke");
  });
  transport.RegisterNode(2, [](uint32_t, const Buffer&, Buffer*) {
    return Status::OK();
  });
  transport.RegisterNode(3, [](uint32_t, const Buffer&, Buffer*) {
    return Status::Internal("node three broke");
  });
  std::vector<Buffer> responses(4);
  std::vector<RpcCall> calls(4);
  for (NodeId node = 0; node < 4; ++node) {
    calls[node].node = node;
    calls[node].response = &responses[node];
  }
  auto status = transport.ParallelCall(&calls);
  // Code of the first failure in call order; message names every failure.
  EXPECT_EQ(status.code(), StatusCode::kAborted);
  EXPECT_NE(status.message().find("node 1"), std::string::npos);
  EXPECT_NE(status.message().find("node one broke"), std::string::npos);
  EXPECT_NE(status.message().find("node 3"), std::string::npos);
  EXPECT_NE(status.message().find("node three broke"), std::string::npos);
}

TEST(ParallelCallTest, HandlerFailingMidFanOutLeavesOthersIntact) {
  InProcTransport transport;
  for (NodeId node = 0; node < 5; ++node) {
    transport.RegisterNode(node, [node](uint32_t, const Buffer&,
                                        Buffer* response) {
      if (node == 2) return Status::Unavailable("mid-fan-out death");
      response->push_back(static_cast<uint8_t>(node));
      return Status::OK();
    });
  }
  std::vector<Buffer> responses(5);
  std::vector<RpcCall> calls(5);
  for (NodeId node = 0; node < 5; ++node) {
    calls[node].node = node;
    calls[node].response = &responses[node];
  }
  auto status = transport.ParallelCall(&calls);
  EXPECT_TRUE(status.IsUnavailable());
  for (NodeId node = 0; node < 5; ++node) {
    if (node == 2) {
      EXPECT_TRUE(calls[node].status.IsUnavailable());
    } else {
      EXPECT_TRUE(calls[node].status.ok()) << "node " << node;
      EXPECT_EQ(responses[node], Buffer({static_cast<uint8_t>(node)}));
    }
  }
}

// ---------- CallAsync lifetime ----------

TEST(CallAsyncTest, CompletionsFinishBeforeTransportDestruction) {
  std::atomic<int> completed{0};
  constexpr int kCalls = 32;
  std::vector<Buffer> requests(kCalls);
  std::vector<Buffer> responses(kCalls);
  {
    InProcTransport transport;
    transport.RegisterNode(0, [](uint32_t, const Buffer&, Buffer* response) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      response->push_back(7);
      return Status::OK();
    });
    for (int i = 0; i < kCalls; ++i) {
      transport.CallAsync(0, 0, requests[i], &responses[i],
                          [&](Status status) {
                            EXPECT_TRUE(status.ok());
                            completed.fetch_add(1);
                          });
    }
    // Transport destroyed here with completions possibly still queued: the
    // dtor must drain them, not abandon or race them.
  }
  EXPECT_EQ(completed.load(), kCalls);
  for (const Buffer& response : responses) {
    EXPECT_EQ(response, Buffer({7}));
  }
}

// ---------- TCP fault paths ----------

TEST(TcpTest, ConnectionRefusedIsUnavailable) {
  TcpTransport transport;
  transport.AddNode(0, "127.0.0.1", 1);  // reserved port, nothing listening
  Buffer response;
  EXPECT_TRUE(transport.Call(0, 0, {}, &response).IsUnavailable());
}

TEST(TcpTest, SurvivesServerRestartOnSamePort) {
  std::atomic<int> generation{1};
  auto handler = [&](uint32_t, const Buffer& request, Buffer* response) {
    *response = request;
    response->push_back(static_cast<uint8_t>(generation.load()));
    return Status::OK();
  };
  auto server = TcpServer::Start(0, handler).ValueOrDie();
  const uint16_t port = server->port();

  TcpTransport transport;
  transport.AddNode(0, "127.0.0.1", port);
  Buffer response;
  ASSERT_TRUE(transport.Call(0, 0, {5}, &response).ok());
  EXPECT_EQ(response, Buffer({5, 1}));

  // Server process "restarts": every pooled client connection is now dead.
  // Sending on one raises EPIPE — which must surface as an error, not a
  // SIGPIPE process kill — and the transport must transparently redial.
  server.reset();
  generation.store(2);
  server = TcpServer::Start(port, handler).ValueOrDie();

  ASSERT_TRUE(transport.Call(0, 0, {6}, &response).ok());
  EXPECT_EQ(response, Buffer({6, 2}));

  // And the fresh connection pools normally afterwards.
  ASSERT_TRUE(transport.Call(0, 0, {7}, &response).ok());
  EXPECT_EQ(response, Buffer({7, 2}));
}

TEST(TcpTest, ServerGoneMidSessionFailsThenRecoversViaRetry) {
  auto handler = [](uint32_t, const Buffer& request, Buffer* response) {
    *response = request;
    return Status::OK();
  };
  auto server = TcpServer::Start(0, handler).ValueOrDie();
  const uint16_t port = server->port();

  TcpTransport transport;
  RpcOptions options;
  options.max_retries = 0;
  transport.set_rpc_options(options);
  transport.AddNode(0, "127.0.0.1", port);
  Buffer response;
  ASSERT_TRUE(transport.Call(0, 0, {1}, &response).ok());

  // Server down entirely: the pooled connection is stale AND redial is
  // refused, so the call fails with a retryable code.
  server.reset();
  auto status = transport.Call(0, 0, {2}, &response);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsRetryable(status.code())) << status.ToString();

  // Back up: the next call (a fresh dial) succeeds without any pool state
  // poisoning it.
  server = TcpServer::Start(port, handler).ValueOrDie();
  ASSERT_TRUE(transport.Call(0, 0, {3}, &response).ok());
  EXPECT_EQ(response, Buffer({3}));
}

TEST(TcpTest, ConcurrentClients) {
  auto server = TcpServer::Start(0, [](uint32_t, const Buffer& request,
                                       Buffer* response) {
    *response = request;
    return Status::OK();
  }).ValueOrDie();

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      TcpTransport transport;
      transport.AddNode(0, "127.0.0.1", server->port());
      for (int i = 0; i < 20; ++i) {
        Buffer request = {static_cast<uint8_t>(t), static_cast<uint8_t>(i)};
        Buffer response;
        if (!transport.Call(0, 0, request, &response).ok() ||
            response != request) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace oe::net

// Network fault injection and exactly-once RPC semantics: FaultyTransport
// schedules are deterministic per seed, the Transport::Call retry policy
// recovers from injected drops, and PsService's sequence-id dedup window
// keeps retried / duplicated pushes from double-applying gradients — the
// retry + idempotency contract a lossy network demands (DESIGN.md
// "Failure model").

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "net/faulty_transport.h"
#include "net/transport.h"
#include "ps/ps_client.h"
#include "ps/ps_cluster.h"
#include "ps/ps_service.h"
#include "storage/optimizer.h"

namespace oe {
namespace {

using net::Buffer;
using net::FaultyTransport;
using net::InProcTransport;
using net::NetFaultSpec;
using net::NodeId;
using net::RpcOptions;

// ---------- FaultyTransport units over a plain echo handler ----------

struct EchoFixture {
  InProcTransport inner;
  std::unique_ptr<FaultyTransport> faulty;
  std::atomic<int> served{0};

  explicit EchoFixture(uint64_t seed = 7) {
    inner.RegisterNode(0, [this](uint32_t, const Buffer& request,
                                 Buffer* response) {
      served.fetch_add(1);
      *response = request;
      return Status::OK();
    });
    faulty = std::make_unique<FaultyTransport>(&inner, seed);
  }
};

TEST(FaultyTransportTest, CleanSpecPassesThrough) {
  EchoFixture fx;
  Buffer response;
  ASSERT_TRUE(fx.faulty->Call(0, 1, {1, 2}, &response).ok());
  EXPECT_EQ(response, Buffer({1, 2}));
  EXPECT_EQ(fx.served.load(), 1);
}

TEST(FaultyTransportTest, DropNeverReachesServerAndIsRetryable) {
  EchoFixture fx;
  NetFaultSpec spec;
  spec.drop_rate = 1.0;
  fx.faulty->SetFaultSpec(0, spec);
  Buffer response;
  auto status = fx.faulty->Call(0, 1, {1}, &response);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(fx.served.load(), 0);  // the request was dropped on the floor
  EXPECT_GE(fx.faulty->FaultStats(0).dropped, 1u);
}

TEST(FaultyTransportTest, FailResponseExecutesServerSide) {
  EchoFixture fx;
  NetFaultSpec spec;
  spec.fail_response_rate = 1.0;
  fx.faulty->SetFaultSpec(0, spec);
  Buffer response;
  auto status = fx.faulty->Call(0, 1, {1}, &response);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(response.empty());
  // The dangerous half of the fault: the server DID run the request.
  EXPECT_EQ(fx.served.load(), 1);
}

TEST(FaultyTransportTest, DuplicateDeliversTwice) {
  EchoFixture fx;
  NetFaultSpec spec;
  spec.duplicate_rate = 1.0;
  fx.faulty->SetFaultSpec(0, spec);
  Buffer response;
  ASSERT_TRUE(fx.faulty->Call(0, 1, {1}, &response).ok());
  EXPECT_EQ(response, Buffer({1}));  // first reply wins
  EXPECT_EQ(fx.served.load(), 2);
}

TEST(FaultyTransportTest, RetryPolicyRecoversFromLossySchedule) {
  EchoFixture fx(/*seed=*/21);
  NetFaultSpec spec;
  spec.drop_rate = 0.4;
  fx.faulty->SetFaultSpec(0, spec);
  RpcOptions options;
  options.max_retries = 20;
  options.backoff_initial_ms = 0;
  fx.faulty->set_rpc_options(options);

  for (int i = 0; i < 50; ++i) {
    Buffer response;
    ASSERT_TRUE(fx.faulty->Call(0, 1, {static_cast<uint8_t>(i)}, &response)
                    .ok())
        << "call " << i;
  }
  // 40% drops at 50 calls: some retries must have happened, all recovered.
  EXPECT_GT(fx.faulty->stats().retries.load(), 0u);
}

TEST(FaultyTransportTest, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    EchoFixture fx(seed);
    NetFaultSpec spec;
    spec.drop_rate = 0.3;
    spec.fail_response_rate = 0.2;
    fx.faulty->SetFaultSpec(0, spec);
    std::vector<StatusCode> codes;
    for (int i = 0; i < 60; ++i) {
      Buffer response;
      codes.push_back(fx.faulty->Call(0, 1, {1}, &response).code());
    }
    return codes;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // and the seed actually matters
}

TEST(FaultyTransportTest, DisconnectAtTakesNodeDown) {
  EchoFixture fx;
  NetFaultSpec spec;
  spec.disconnect_at = 3;
  fx.faulty->SetFaultSpec(0, spec);
  Buffer response;
  ASSERT_TRUE(fx.faulty->Call(0, 1, {1}, &response).ok());
  ASSERT_TRUE(fx.faulty->Call(0, 1, {2}, &response).ok());
  ASSERT_TRUE(fx.faulty->Call(0, 1, {3}, &response).ok());  // completes...
  EXPECT_TRUE(fx.faulty->IsNodeDown(0));                    // ...then down
  EXPECT_TRUE(fx.faulty->Call(0, 1, {4}, &response).IsUnavailable());
  EXPECT_EQ(fx.served.load(), 3);

  fx.faulty->SetNodeDown(0, false);  // revive
  ASSERT_TRUE(fx.faulty->Call(0, 1, {5}, &response).ok());
}

TEST(FaultyTransportTest, KillAtFiresCallbackBeforeDispatch) {
  EchoFixture fx;
  NetFaultSpec spec;
  spec.kill_at = 2;
  fx.faulty->SetFaultSpec(0, spec);
  std::vector<NodeId> killed;
  fx.faulty->SetKillCallback([&](NodeId node) { killed.push_back(node); });

  Buffer response;
  ASSERT_TRUE(fx.faulty->Call(0, 1, {1}, &response).ok());
  EXPECT_TRUE(fx.faulty->Call(0, 1, {2}, &response).IsUnavailable());
  EXPECT_EQ(killed, std::vector<NodeId>({0}));
  EXPECT_EQ(fx.served.load(), 1);  // the killed call never dispatched
}

// ---------- Exactly-once pushes through the PS stack ----------

ps::ClusterOptions SmallClusterOptions() {
  ps::ClusterOptions options;
  options.num_nodes = 2;
  options.kind = storage::StoreKind::kPipelined;
  options.store.dim = 4;
  options.store.optimizer.kind = storage::OptimizerKind::kSgd;
  options.store.optimizer.learning_rate = 0.1f;
  options.pmem_bytes_per_node = 16ULL << 20;
  return options;
}

// Runs the same pull/push workload against a cluster; returns the final
// weights of every key.
std::vector<std::vector<float>> RunWorkload(ps::PsCluster* cluster) {
  ps::PsClient& client = cluster->client();
  std::vector<storage::EntryId> keys(32);
  std::iota(keys.begin(), keys.end(), 0);
  std::vector<float> weights(keys.size() * 4);
  for (uint64_t batch = 1; batch <= 10; ++batch) {
    EXPECT_TRUE(
        client.Pull(keys.data(), keys.size(), batch, weights.data()).ok());
    EXPECT_TRUE(client.FinishPullPhase(batch).ok());
    std::vector<float> grads(keys.size() * 4,
                             0.01f * static_cast<float>(batch));
    EXPECT_TRUE(
        client.Push(keys.data(), keys.size(), grads.data(), batch).ok());
  }
  std::vector<std::vector<float>> result;
  for (storage::EntryId key : keys) {
    result.push_back(client.Peek(key).ValueOrDie());
  }
  return result;
}

TEST(ExactlyOnceTest, LossyDuplicatingNetworkMatchesGoldenRun) {
  // Golden: no faults. Subject: drops, duplicates and lost responses with
  // aggressive retries. Sequence-id dedup must make them bit-identical —
  // every gradient applied exactly once despite at-least-once delivery.
  auto golden = ps::PsCluster::Create(SmallClusterOptions()).ValueOrDie();
  const auto golden_weights = RunWorkload(golden.get());

  ps::ClusterOptions faulty_options = SmallClusterOptions();
  faulty_options.inject_net_faults = true;
  faulty_options.net_fault_seed = 33;
  faulty_options.net_fault_spec.drop_rate = 0.15;
  faulty_options.net_fault_spec.fail_response_rate = 0.15;
  faulty_options.net_fault_spec.duplicate_rate = 0.2;
  faulty_options.rpc_options.max_retries = 50;
  faulty_options.rpc_options.backoff_initial_ms = 0;
  auto faulty = ps::PsCluster::Create(faulty_options).ValueOrDie();
  const auto faulty_weights = RunWorkload(faulty.get());

  ASSERT_EQ(golden_weights.size(), faulty_weights.size());
  for (size_t i = 0; i < golden_weights.size(); ++i) {
    EXPECT_EQ(golden_weights[i], faulty_weights[i]) << "key " << i;
  }

  // The schedule actually exercised the dedup path: at least one retried
  // or duplicated mutation was short-circuited by a node's window.
  uint64_t dedup_hits = 0;
  for (uint32_t node = 0; node < faulty->num_nodes(); ++node) {
    dedup_hits += faulty->service(node)->DedupHits();
  }
  EXPECT_GT(dedup_hits, 0u);
  EXPECT_GT(faulty->net_stats().retries.load(), 0u);
}

TEST(ExactlyOnceTest, DuplicatedPushAppliesOnce) {
  // Surgical version of the property: duplicate EVERY request; without
  // dedup each push would apply twice and the weights would diverge 2x.
  auto golden = ps::PsCluster::Create(SmallClusterOptions()).ValueOrDie();
  const auto golden_weights = RunWorkload(golden.get());

  ps::ClusterOptions dup_options = SmallClusterOptions();
  dup_options.inject_net_faults = true;
  dup_options.net_fault_spec.duplicate_rate = 1.0;
  auto dup = ps::PsCluster::Create(dup_options).ValueOrDie();
  const auto dup_weights = RunWorkload(dup.get());

  for (size_t i = 0; i < golden_weights.size(); ++i) {
    EXPECT_EQ(golden_weights[i], dup_weights[i]) << "key " << i;
  }
  uint64_t dedup_hits = 0;
  for (uint32_t node = 0; node < dup->num_nodes(); ++node) {
    dedup_hits += dup->service(node)->DedupHits();
  }
  EXPECT_GT(dedup_hits, 0u);
}

// ---------- Node lifecycle ----------

TEST(NodeLifecycleTest, KilledNodeIsUnavailableUntilRestart) {
  ps::ClusterOptions options = SmallClusterOptions();
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();
  ps::PsClient& client = cluster->client();

  std::vector<storage::EntryId> keys = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<float> weights(keys.size() * 4);
  ASSERT_TRUE(client.Pull(keys.data(), keys.size(), 1, weights.data()).ok());
  ASSERT_TRUE(client.FinishPullPhase(1).ok());
  std::vector<float> grads(keys.size() * 4, 0.5f);
  ASSERT_TRUE(client.Push(keys.data(), keys.size(), grads.data(), 1).ok());
  ASSERT_TRUE(client.RequestCheckpoint(1).ok());
  ASSERT_TRUE(client.DrainCheckpoints().ok());
  std::vector<std::vector<float>> checkpointed;
  for (storage::EntryId key : keys) {
    checkpointed.push_back(client.Peek(key).ValueOrDie());
  }

  ASSERT_TRUE(cluster->KillNode(1).ok());
  EXPECT_TRUE(cluster->node_down(1));
  EXPECT_EQ(cluster->DownNodes(), std::vector<uint32_t>({1}));
  // Killing twice is an error; the node is already gone.
  EXPECT_FALSE(cluster->KillNode(1).ok());

  // Ops spanning both shards now fail with a retryable Unavailable.
  auto status = client.Pull(keys.data(), keys.size(), 2, weights.data());
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();

  // Restart over the surviving device image + cluster-wide recovery rolls
  // every shard back to the drained checkpoint.
  ASSERT_TRUE(cluster->RestartDownNodes().ok());
  EXPECT_FALSE(cluster->node_down(1));
  cluster->SimulateCrashAll();
  ASSERT_TRUE(client.Recover().ok());
  ASSERT_EQ(client.ClusterCheckpoint().ValueOrDie(), 1u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(client.Peek(keys[i]).ValueOrDie(), checkpointed[i])
        << "key " << keys[i];
  }
}

TEST(NodeLifecycleTest, RestartOfHealthyNodeRejected) {
  auto cluster = ps::PsCluster::Create(SmallClusterOptions()).ValueOrDie();
  EXPECT_FALSE(cluster->RestartNode(0).ok());
  EXPECT_FALSE(cluster->KillNode(99).ok());
}

TEST(NodeLifecycleTest, KillCallbackWiredToClusterKillsForReal) {
  ps::ClusterOptions options = SmallClusterOptions();
  options.inject_net_faults = true;
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();
  cluster->faulty_transport()->SetKillCallback(
      [&](NodeId node) { ASSERT_TRUE(cluster->KillNode(node).ok()); });
  NetFaultSpec spec;
  spec.kill_at = 4;
  cluster->faulty_transport()->SetFaultSpec(1, spec);

  ps::PsClient& client = cluster->client();
  std::vector<storage::EntryId> keys(16);
  std::iota(keys.begin(), keys.end(), 0);
  std::vector<float> weights(keys.size() * 4);
  Status status;
  for (uint64_t batch = 1; batch <= 10 && status.ok(); ++batch) {
    status = client.Pull(keys.data(), keys.size(), batch, weights.data());
    if (status.ok()) status = client.FinishPullPhase(batch);
    std::vector<float> grads(keys.size() * 4, 0.01f);
    if (status.ok()) {
      status = client.Push(keys.data(), keys.size(), grads.data(), batch);
    }
  }
  // The schedule killed node 1 mid-workload; training saw Unavailable and
  // the cluster really tore the node down (store gone, device crashed).
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_TRUE(cluster->node_down(1));
}

}  // namespace
}  // namespace oe

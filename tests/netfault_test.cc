// Network fault injection and exactly-once RPC semantics: FaultyTransport
// schedules are deterministic per seed, the Transport::Call retry policy
// recovers from injected drops, and PsService's sequence-id dedup window
// keeps retried / duplicated pushes from double-applying gradients — the
// retry + idempotency contract a lossy network demands (DESIGN.md
// "Failure model").

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "net/faulty_transport.h"
#include "net/transport.h"
#include "ps/ps_client.h"
#include "ps/ps_cluster.h"
#include "ps/ps_service.h"
#include "storage/optimizer.h"

namespace oe {
namespace {

using net::Buffer;
using net::FaultyTransport;
using net::InProcTransport;
using net::NetFaultSpec;
using net::NodeId;
using net::RpcOptions;

// ---------- FaultyTransport units over a plain echo handler ----------

struct EchoFixture {
  InProcTransport inner;
  std::unique_ptr<FaultyTransport> faulty;
  std::atomic<int> served{0};

  explicit EchoFixture(uint64_t seed = 7) {
    inner.RegisterNode(0, [this](uint32_t, const Buffer& request,
                                 Buffer* response) {
      served.fetch_add(1);
      *response = request;
      return Status::OK();
    });
    faulty = std::make_unique<FaultyTransport>(&inner, seed);
  }
};

TEST(FaultyTransportTest, CleanSpecPassesThrough) {
  EchoFixture fx;
  Buffer response;
  ASSERT_TRUE(fx.faulty->Call(0, 1, {1, 2}, &response).ok());
  EXPECT_EQ(response, Buffer({1, 2}));
  EXPECT_EQ(fx.served.load(), 1);
}

TEST(FaultyTransportTest, DropNeverReachesServerAndIsRetryable) {
  EchoFixture fx;
  NetFaultSpec spec;
  spec.drop_rate = 1.0;
  fx.faulty->SetFaultSpec(0, spec);
  Buffer response;
  auto status = fx.faulty->Call(0, 1, {1}, &response);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(fx.served.load(), 0);  // the request was dropped on the floor
  EXPECT_GE(fx.faulty->FaultStats(0).dropped, 1u);
}

TEST(FaultyTransportTest, FailResponseExecutesServerSide) {
  EchoFixture fx;
  NetFaultSpec spec;
  spec.fail_response_rate = 1.0;
  fx.faulty->SetFaultSpec(0, spec);
  Buffer response;
  auto status = fx.faulty->Call(0, 1, {1}, &response);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(response.empty());
  // The dangerous half of the fault: the server DID run the request.
  EXPECT_EQ(fx.served.load(), 1);
}

TEST(FaultyTransportTest, DuplicateDeliversTwice) {
  EchoFixture fx;
  NetFaultSpec spec;
  spec.duplicate_rate = 1.0;
  fx.faulty->SetFaultSpec(0, spec);
  Buffer response;
  ASSERT_TRUE(fx.faulty->Call(0, 1, {1}, &response).ok());
  EXPECT_EQ(response, Buffer({1}));  // first reply wins
  EXPECT_EQ(fx.served.load(), 2);
}

TEST(FaultyTransportTest, RetryPolicyRecoversFromLossySchedule) {
  EchoFixture fx(/*seed=*/21);
  NetFaultSpec spec;
  spec.drop_rate = 0.4;
  fx.faulty->SetFaultSpec(0, spec);
  RpcOptions options;
  options.max_retries = 20;
  options.backoff_initial_ms = 0;
  fx.faulty->set_rpc_options(options);

  for (int i = 0; i < 50; ++i) {
    Buffer response;
    ASSERT_TRUE(fx.faulty->Call(0, 1, {static_cast<uint8_t>(i)}, &response)
                    .ok())
        << "call " << i;
  }
  // 40% drops at 50 calls: some retries must have happened, all recovered.
  EXPECT_GT(fx.faulty->stats().retries.load(), 0u);
}

TEST(FaultyTransportTest, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    EchoFixture fx(seed);
    NetFaultSpec spec;
    spec.drop_rate = 0.3;
    spec.fail_response_rate = 0.2;
    fx.faulty->SetFaultSpec(0, spec);
    std::vector<StatusCode> codes;
    for (int i = 0; i < 60; ++i) {
      Buffer response;
      codes.push_back(fx.faulty->Call(0, 1, {1}, &response).code());
    }
    return codes;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // and the seed actually matters
}

TEST(FaultyTransportTest, DisconnectAtTakesNodeDown) {
  EchoFixture fx;
  NetFaultSpec spec;
  spec.disconnect_at = 3;
  fx.faulty->SetFaultSpec(0, spec);
  Buffer response;
  ASSERT_TRUE(fx.faulty->Call(0, 1, {1}, &response).ok());
  ASSERT_TRUE(fx.faulty->Call(0, 1, {2}, &response).ok());
  ASSERT_TRUE(fx.faulty->Call(0, 1, {3}, &response).ok());  // completes...
  EXPECT_TRUE(fx.faulty->IsNodeDown(0));                    // ...then down
  EXPECT_TRUE(fx.faulty->Call(0, 1, {4}, &response).IsUnavailable());
  EXPECT_EQ(fx.served.load(), 3);

  fx.faulty->SetNodeDown(0, false);  // revive
  ASSERT_TRUE(fx.faulty->Call(0, 1, {5}, &response).ok());
}

TEST(FaultyTransportTest, KillAtFiresCallbackBeforeDispatch) {
  EchoFixture fx;
  NetFaultSpec spec;
  spec.kill_at = 2;
  fx.faulty->SetFaultSpec(0, spec);
  std::vector<NodeId> killed;
  fx.faulty->SetKillCallback([&](NodeId node) { killed.push_back(node); });

  Buffer response;
  ASSERT_TRUE(fx.faulty->Call(0, 1, {1}, &response).ok());
  EXPECT_TRUE(fx.faulty->Call(0, 1, {2}, &response).IsUnavailable());
  EXPECT_EQ(killed, std::vector<NodeId>({0}));
  EXPECT_EQ(fx.served.load(), 1);  // the killed call never dispatched
}

// ---------- Exactly-once pushes through the PS stack ----------

ps::ClusterOptions SmallClusterOptions() {
  ps::ClusterOptions options;
  options.num_nodes = 2;
  options.kind = storage::StoreKind::kPipelined;
  options.store.dim = 4;
  options.store.optimizer.kind = storage::OptimizerKind::kSgd;
  options.store.optimizer.learning_rate = 0.1f;
  options.pmem_bytes_per_node = 16ULL << 20;
  return options;
}

// Runs the same pull/push workload against a cluster; returns the final
// weights of every key.
std::vector<std::vector<float>> RunWorkload(ps::PsCluster* cluster) {
  ps::PsClient& client = cluster->client();
  std::vector<storage::EntryId> keys(32);
  std::iota(keys.begin(), keys.end(), 0);
  std::vector<float> weights(keys.size() * 4);
  for (uint64_t batch = 1; batch <= 10; ++batch) {
    EXPECT_TRUE(
        client.Pull(keys.data(), keys.size(), batch, weights.data()).ok());
    EXPECT_TRUE(client.FinishPullPhase(batch).ok());
    std::vector<float> grads(keys.size() * 4,
                             0.01f * static_cast<float>(batch));
    EXPECT_TRUE(
        client.Push(keys.data(), keys.size(), grads.data(), batch).ok());
  }
  std::vector<std::vector<float>> result;
  for (storage::EntryId key : keys) {
    result.push_back(client.Peek(key).ValueOrDie());
  }
  return result;
}

TEST(ExactlyOnceTest, LossyDuplicatingNetworkMatchesGoldenRun) {
  // Golden: no faults. Subject: drops, duplicates and lost responses with
  // aggressive retries. Sequence-id dedup must make them bit-identical —
  // every gradient applied exactly once despite at-least-once delivery.
  auto golden = ps::PsCluster::Create(SmallClusterOptions()).ValueOrDie();
  const auto golden_weights = RunWorkload(golden.get());

  ps::ClusterOptions faulty_options = SmallClusterOptions();
  faulty_options.inject_net_faults = true;
  faulty_options.net_fault_seed = 33;
  faulty_options.net_fault_spec.drop_rate = 0.15;
  faulty_options.net_fault_spec.fail_response_rate = 0.15;
  faulty_options.net_fault_spec.duplicate_rate = 0.2;
  faulty_options.rpc_options.max_retries = 50;
  faulty_options.rpc_options.backoff_initial_ms = 0;
  auto faulty = ps::PsCluster::Create(faulty_options).ValueOrDie();
  const auto faulty_weights = RunWorkload(faulty.get());

  ASSERT_EQ(golden_weights.size(), faulty_weights.size());
  for (size_t i = 0; i < golden_weights.size(); ++i) {
    EXPECT_EQ(golden_weights[i], faulty_weights[i]) << "key " << i;
  }

  // The schedule actually exercised the dedup path: at least one retried
  // or duplicated mutation was short-circuited by a node's window.
  uint64_t dedup_hits = 0;
  for (uint32_t node = 0; node < faulty->num_nodes(); ++node) {
    dedup_hits += faulty->service(node)->DedupHits();
  }
  EXPECT_GT(dedup_hits, 0u);
  EXPECT_GT(faulty->net_stats().retries.load(), 0u);
}

TEST(ExactlyOnceTest, DuplicatedPushAppliesOnce) {
  // Surgical version of the property: duplicate EVERY request; without
  // dedup each push would apply twice and the weights would diverge 2x.
  auto golden = ps::PsCluster::Create(SmallClusterOptions()).ValueOrDie();
  const auto golden_weights = RunWorkload(golden.get());

  ps::ClusterOptions dup_options = SmallClusterOptions();
  dup_options.inject_net_faults = true;
  dup_options.net_fault_spec.duplicate_rate = 1.0;
  auto dup = ps::PsCluster::Create(dup_options).ValueOrDie();
  const auto dup_weights = RunWorkload(dup.get());

  for (size_t i = 0; i < golden_weights.size(); ++i) {
    EXPECT_EQ(golden_weights[i], dup_weights[i]) << "key " << i;
  }
  uint64_t dedup_hits = 0;
  for (uint32_t node = 0; node < dup->num_nodes(); ++node) {
    dedup_hits += dup->service(node)->DedupHits();
  }
  EXPECT_GT(dedup_hits, 0u);
}

// ---------- Serving reads under network faults ----------

// Trains `batches` checkpointed batches on `keys`, then pushes two more
// un-checkpointed batches so live weights diverge from the published
// snapshot. Returns the per-key weights at the published checkpoint.
std::vector<std::vector<float>> TrainPastCheckpoint(
    ps::PsCluster* cluster, const std::vector<storage::EntryId>& keys,
    uint64_t batches) {
  ps::PsClient& client = cluster->client();
  std::vector<float> weights(keys.size() * 4);
  auto step = [&](uint64_t batch) {
    ASSERT_TRUE(
        client.Pull(keys.data(), keys.size(), batch, weights.data()).ok());
    ASSERT_TRUE(client.FinishPullPhase(batch).ok());
    std::vector<float> grads(keys.size() * 4,
                             0.1f * static_cast<float>(batch));
    ASSERT_TRUE(
        client.Push(keys.data(), keys.size(), grads.data(), batch).ok());
  };
  for (uint64_t batch = 1; batch <= batches; ++batch) step(batch);
  EXPECT_TRUE(client.RequestCheckpoint(batches).ok());
  EXPECT_TRUE(client.DrainCheckpoints().ok());
  std::vector<std::vector<float>> snapshot;
  for (storage::EntryId key : keys) {
    snapshot.push_back(client.Peek(key).ValueOrDie());
  }
  // Live state moves past the published checkpoint: a torn or non-snapshot
  // read would leak these newer values into a MultiGet response.
  step(batches + 1);
  step(batches + 2);
  return snapshot;
}

TEST(ServingFaultsTest, MultiGetNeverTornUnderLossyDelayingNetwork) {
  ps::ClusterOptions options = SmallClusterOptions();
  options.inject_net_faults = true;
  options.net_fault_seed = 77;
  options.net_fault_spec.drop_rate = 0.15;
  options.net_fault_spec.fail_response_rate = 0.1;
  options.net_fault_spec.duplicate_rate = 0.2;
  options.net_fault_spec.delay_rate = 0.1;
  options.net_fault_spec.delay_ms = 1;
  options.rpc_options.max_retries = 50;
  options.rpc_options.backoff_initial_ms = 0;
  options.serving_cache_bytes = 64 << 10;
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();

  std::vector<storage::EntryId> keys(32);
  std::iota(keys.begin(), keys.end(), 0);
  const auto snapshot = TrainPastCheckpoint(cluster.get(), keys, 3);

  ps::PsClient& client = cluster->client();
  std::vector<float> out(keys.size() * 4);
  std::vector<uint8_t> found(keys.size());
  int successes = 0;
  for (int round = 0; round < 40; ++round) {
    uint64_t cp = 0;
    const Status status =
        client.MultiGet(keys.data(), keys.size(), out.data(), found.data(),
                        &cp);
    if (!status.ok()) {
      // The only acceptable failures are transient transport outcomes: the
      // retry budget ran dry on drops (kUnavailable) or a lost response
      // (kIoError). Anything else means the read path broke.
      EXPECT_TRUE(status.IsUnavailable() ||
                  status.code() == StatusCode::kIoError)
          << status.ToString();
      continue;
    }
    ++successes;
    // A successful response is the published snapshot, bit-exact — never a
    // mix of checkpoint versions and never the newer un-checkpointed state.
    EXPECT_EQ(cp, 3u) << "round " << round;
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(found[i], 1) << "key " << keys[i];
      const std::vector<float> got(out.begin() + static_cast<long>(i) * 4,
                                   out.begin() + static_cast<long>(i + 1) * 4);
      EXPECT_EQ(got, snapshot[i]) << "round " << round << " key " << keys[i];
    }
  }
  // 50 retries against a 15% drop schedule: effectively every read lands.
  EXPECT_GT(successes, 30);
  EXPECT_GT(cluster->net_stats().retries.load(), 0u);
}

TEST(ServingFaultsTest, ReadsAreExemptFromPushDedupWindow) {
  // Duplicate EVERY request. Mutating RPCs must be absorbed by the dedup
  // window (hits grow during training); MultiGet is a read with seq 0, so
  // the server must answer both deliveries and the window must not move.
  ps::ClusterOptions options = SmallClusterOptions();
  options.inject_net_faults = true;
  options.net_fault_spec.duplicate_rate = 1.0;
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();

  std::vector<storage::EntryId> keys(16);
  std::iota(keys.begin(), keys.end(), 0);
  const auto snapshot = TrainPastCheckpoint(cluster.get(), keys, 2);

  auto dedup_hits = [&] {
    uint64_t hits = 0;
    for (uint32_t node = 0; node < cluster->num_nodes(); ++node) {
      hits += cluster->service(node)->DedupHits();
    }
    return hits;
  };
  const uint64_t hits_after_training = dedup_hits();
  EXPECT_GT(hits_after_training, 0u);  // duplicated pushes were absorbed

  ps::PsClient& client = cluster->client();
  std::vector<float> out(keys.size() * 4);
  std::vector<uint8_t> found(keys.size());
  for (int round = 0; round < 20; ++round) {
    uint64_t cp = 0;
    ASSERT_TRUE(client
                    .MultiGet(keys.data(), keys.size(), out.data(),
                              found.data(), &cp)
                    .ok());
    EXPECT_EQ(cp, 2u);
    for (size_t i = 0; i < keys.size(); ++i) {
      const std::vector<float> got(out.begin() + static_cast<long>(i) * 4,
                                   out.begin() + static_cast<long>(i + 1) * 4);
      EXPECT_EQ(got, snapshot[i]) << "key " << keys[i];
    }
  }
  // 20 duplicated reads, zero new dedup hits: reads bypass the window.
  EXPECT_EQ(dedup_hits(), hits_after_training);

  // And the window is still live for mutations: one more duplicated push
  // batch raises the hit count.
  std::vector<float> weights(keys.size() * 4);
  ASSERT_TRUE(client.Pull(keys.data(), keys.size(), 5, weights.data()).ok());
  ASSERT_TRUE(client.FinishPullPhase(5).ok());
  std::vector<float> grads(keys.size() * 4, 0.1f);
  ASSERT_TRUE(client.Push(keys.data(), keys.size(), grads.data(), 5).ok());
  EXPECT_GT(dedup_hits(), hits_after_training);
}

// ---------- Node lifecycle ----------

TEST(NodeLifecycleTest, KilledNodeIsUnavailableUntilRestart) {
  ps::ClusterOptions options = SmallClusterOptions();
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();
  ps::PsClient& client = cluster->client();

  std::vector<storage::EntryId> keys = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<float> weights(keys.size() * 4);
  ASSERT_TRUE(client.Pull(keys.data(), keys.size(), 1, weights.data()).ok());
  ASSERT_TRUE(client.FinishPullPhase(1).ok());
  std::vector<float> grads(keys.size() * 4, 0.5f);
  ASSERT_TRUE(client.Push(keys.data(), keys.size(), grads.data(), 1).ok());
  ASSERT_TRUE(client.RequestCheckpoint(1).ok());
  ASSERT_TRUE(client.DrainCheckpoints().ok());
  std::vector<std::vector<float>> checkpointed;
  for (storage::EntryId key : keys) {
    checkpointed.push_back(client.Peek(key).ValueOrDie());
  }

  ASSERT_TRUE(cluster->KillNode(1).ok());
  EXPECT_TRUE(cluster->node_down(1));
  EXPECT_EQ(cluster->DownNodes(), std::vector<uint32_t>({1}));
  // Killing twice is an error; the node is already gone.
  EXPECT_FALSE(cluster->KillNode(1).ok());

  // Ops spanning both shards now fail with a retryable Unavailable.
  auto status = client.Pull(keys.data(), keys.size(), 2, weights.data());
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();

  // Restart over the surviving device image + cluster-wide recovery rolls
  // every shard back to the drained checkpoint.
  ASSERT_TRUE(cluster->RestartDownNodes().ok());
  EXPECT_FALSE(cluster->node_down(1));
  cluster->SimulateCrashAll();
  ASSERT_TRUE(client.Recover().ok());
  ASSERT_EQ(client.ClusterCheckpoint().ValueOrDie(), 1u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(client.Peek(keys[i]).ValueOrDie(), checkpointed[i])
        << "key " << keys[i];
  }
}

TEST(NodeLifecycleTest, RestartOfHealthyNodeRejected) {
  auto cluster = ps::PsCluster::Create(SmallClusterOptions()).ValueOrDie();
  EXPECT_FALSE(cluster->RestartNode(0).ok());
  EXPECT_FALSE(cluster->KillNode(99).ok());
}

TEST(NodeLifecycleTest, KillCallbackWiredToClusterKillsForReal) {
  ps::ClusterOptions options = SmallClusterOptions();
  options.inject_net_faults = true;
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();
  cluster->faulty_transport()->SetKillCallback(
      [&](NodeId node) { ASSERT_TRUE(cluster->KillNode(node).ok()); });
  NetFaultSpec spec;
  spec.kill_at = 4;
  cluster->faulty_transport()->SetFaultSpec(1, spec);

  ps::PsClient& client = cluster->client();
  std::vector<storage::EntryId> keys(16);
  std::iota(keys.begin(), keys.end(), 0);
  std::vector<float> weights(keys.size() * 4);
  Status status;
  for (uint64_t batch = 1; batch <= 10 && status.ok(); ++batch) {
    status = client.Pull(keys.data(), keys.size(), batch, weights.data());
    if (status.ok()) status = client.FinishPullPhase(batch);
    std::vector<float> grads(keys.size() * 4, 0.01f);
    if (status.ok()) {
      status = client.Push(keys.data(), keys.size(), grads.data(), batch);
    }
  }
  // The schedule killed node 1 mid-workload; training saw Unavailable and
  // the cluster really tore the node down (store gone, device crashed).
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_TRUE(cluster->node_down(1));
}

}  // namespace
}  // namespace oe

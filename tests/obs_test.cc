// Observability layer tests: registry concurrency (the tsan workload),
// Distribution/Histogram percentile parity, span nesting and thread
// attribution, and trace_event JSON well-formedness.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oe::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (recursive descent). Good enough to reject
// malformed output — unbalanced braces, missing commas, bad escapes — which
// is what the golden checks below need; semantic checks are done on top via
// substring probes.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // {
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // [
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // unescaped control character
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a": [1, 2.5, -3e4], "b": {"c": "x\n"}})")
                  .Valid());
  EXPECT_TRUE(JsonChecker("[]").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a": 1,})").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a" 1})").Valid());
  EXPECT_FALSE(JsonChecker(R"(["unterminated)").Valid());
  EXPECT_FALSE(JsonChecker("{}{}").Valid());
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsRegistryTest, SameIdentitySamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ops", {{"shard", "0"}});
  Counter* b = registry.GetCounter("ops", {{"shard", "0"}});
  Counter* c = registry.GetCounter("ops", {{"shard", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Add(2);
  c->Increment();
  EXPECT_EQ(registry.Snapshot().CounterValue("ops", {{"shard", "0"}}), 2u);
  EXPECT_EQ(registry.Snapshot().CounterValue("ops", {{"shard", "1"}}), 1u);
}

TEST(MetricsRegistryTest, FindMatchesLabelSubset) {
  MetricsRegistry registry;
  registry.GetGauge("depth", {{"engine", "pipelined"}, {"shard", "3"}})
      ->Set(7);
  const MetricsSnapshot snap = registry.Snapshot();
  const MetricValue* by_subset = snap.Find("depth", {{"shard", "3"}});
  ASSERT_NE(by_subset, nullptr);
  EXPECT_EQ(by_subset->gauge, 7);
  EXPECT_EQ(snap.Find("depth", {{"shard", "9"}}), nullptr);
  EXPECT_EQ(snap.Find("nope"), nullptr);
}

// The TSan workload: concurrent registration of overlapping identities plus
// lock-free recording, racing a snapshotting reader.
TEST(MetricsRegistryTest, ConcurrentRegisterRecordSnapshot) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Half the threads share each identity, so registration races.
      const Labels labels = {{"shard", std::to_string(t % 4)}};
      Counter* counter = registry.GetCounter("ops", labels);
      Distribution* dist = registry.GetDistribution("lat_ns", labels);
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter->Increment();
        dist->Record(static_cast<double>(100 + i % 1000));
      }
    });
  }
  std::atomic<bool> stop{false};
  threads.emplace_back([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = registry.Snapshot();
      for (const MetricValue& m : snap.metrics) {
        if (m.kind == MetricValue::Kind::kDistribution) {
          // Count/buckets must always be internally consistent enough to
          // not crash percentile math mid-race.
          (void)m.distribution.Percentile(50);
        }
      }
    }
  });
  for (int t = 0; t < kThreads; ++t) threads[static_cast<size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  uint64_t total = 0;
  const MetricsSnapshot snap = registry.Snapshot();
  for (const MetricValue& m : snap.metrics) {
    if (m.kind == MetricValue::Kind::kCounter) total += m.counter;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  const MetricValue* dist = snap.Find("lat_ns", {{"shard", "0"}});
  ASSERT_NE(dist, nullptr);
  EXPECT_EQ(dist->distribution.count, 2u * kOpsPerThread);
}

TEST(MetricsRegistryTest, SnapshotJsonIsValid) {
  MetricsRegistry registry;
  registry.GetCounter("pulls", {{"store", "1"}})->Add(3);
  registry.GetGauge("cached")->Set(-5);
  Distribution* dist = registry.GetDistribution("lat_ns");
  dist->Record(10);
  dist->Record(1000);
  const std::string json = registry.SnapshotJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"pulls\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Serving SLOs are quoted at p999; the exported snapshot must carry it.
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Distribution vs common/Histogram parity

TEST(DistributionTest, MatchesHistogramPercentiles) {
  MetricsRegistry registry;
  Distribution* dist = registry.GetDistribution("lat");
  Histogram histogram;
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> lognormal(8.0, 2.0);
  for (int i = 0; i < 20000; ++i) {
    const double v = lognormal(rng);
    dist->Record(v);
    histogram.Add(v);
  }
  const DistributionSnapshot snap = dist->Snapshot();
  EXPECT_EQ(snap.count, 20000u);
  for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    // Same bucket scheme, same interpolation: the two implementations must
    // agree to rounding error.
    EXPECT_NEAR(snap.Percentile(p), histogram.Percentile(p),
                1e-6 * std::max(1.0, histogram.Percentile(p)))
        << "p" << p;
  }
  EXPECT_NEAR(snap.Mean(), histogram.Mean(),
              1e-6 * std::max(1.0, histogram.Mean()));
  EXPECT_DOUBLE_EQ(snap.min, histogram.min());
  EXPECT_DOUBLE_EQ(snap.max, histogram.max());
}

TEST(DistributionTest, EmptyAndSingleValue) {
  MetricsRegistry registry;
  Distribution* dist = registry.GetDistribution("lat");
  EXPECT_EQ(dist->Snapshot().Percentile(50), 0.0);
  dist->Record(123.0);
  const DistributionSnapshot snap = dist->Snapshot();
  // Percentiles are clamped to the observed [min, max].
  EXPECT_DOUBLE_EQ(snap.Percentile(0), 123.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 123.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(99.9), 123.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 123.0);
}

TEST(DistributionTest, TailPercentileAccurateWithFewSamples) {
  // The p999 regime for a short bench run: the threshold count (99.9% of
  // ten samples = 9.99) lands inside the single outlier's bucket, so the
  // estimate must interpolate within that bucket and clamp to the observed
  // max — never report a value the distribution cannot contain.
  MetricsRegistry registry;
  Distribution* dist = registry.GetDistribution("lat");
  for (int i = 0; i < 9; ++i) dist->Record(1.0);
  dist->Record(1000.0);
  const DistributionSnapshot snap = dist->Snapshot();

  const int bucket = Histogram::BucketFor(1000.0);
  const double bucket_left = Histogram::BucketLimit(bucket - 1);
  const double p999 = snap.Percentile(99.9);
  EXPECT_GE(p999, bucket_left);  // came from the outlier's bucket...
  EXPECT_LE(p999, 1000.0);       // ...and clamped to the true max
  // One-bucket accuracy: at the histogram's geometric bucket ratio that
  // bounds the relative error of a tail estimate from sparse samples.
  EXPECT_NEAR(p999, 1000.0, 1000.0 - bucket_left);
}

TEST(DistributionTest, PercentilesMonotoneInP) {
  MetricsRegistry registry;
  Distribution* dist = registry.GetDistribution("lat");
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> lognormal(5.0, 1.5);
  for (int i = 0; i < 200; ++i) dist->Record(lognormal(rng));
  const DistributionSnapshot snap = dist->Snapshot();
  double previous = snap.min;
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double value = snap.Percentile(p);
    EXPECT_GE(value, previous) << "p" << p << " regressed";
    previous = value;
  }
  EXPECT_LE(previous, snap.max);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder recorder(64);
  { ScopedSpan span(recorder, "cat", "op"); }
  EXPECT_TRUE(recorder.Drain().empty());
}

TEST(TraceRecorderTest, SpanNestingAndThreadAttribution) {
  TraceRecorder recorder(256);
  recorder.set_enabled(true);

  recorder.SetThreadName("main");
  {
    ScopedSpan outer(recorder, "test", "outer");
    ScopedSpan inner(recorder, "test", "inner");
  }
  std::thread worker([&recorder] {
    recorder.SetThreadName("worker");
    ScopedSpan span(recorder, "test", "from_worker");
  });
  worker.join();

  const std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 3u);

  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  const TraceEvent* remote = nullptr;
  for (const TraceEvent& event : events) {
    if (std::string_view(event.name) == "outer") outer = &event;
    if (std::string_view(event.name) == "inner") inner = &event;
    if (std::string_view(event.name) == "from_worker") remote = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(remote, nullptr);

  // Nesting: the inner span starts no earlier and ends no later (RAII
  // destruction order closes inner first).
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->duration_ns,
            outer->start_ns + outer->duration_ns);
  // Same thread, same tid; other thread, different tid.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_NE(remote->tid, outer->tid);
  EXPECT_EQ(outer->pid, TraceRecorder::kWallPid);

  // Thread names land as metadata events in the JSON.
  const std::string json = recorder.ToChromeJson();
  EXPECT_NE(json.find("\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"worker\""), std::string::npos);
}

TEST(TraceRecorderTest, RingOverflowCountsDropped) {
  TraceRecorder recorder(16);
  recorder.set_enabled(true);
  for (int i = 0; i < 50; ++i) {
    ScopedSpan span(recorder, "test", "op");
  }
  EXPECT_EQ(recorder.Drain().size(), 16u);
  EXPECT_EQ(recorder.dropped(), 34u);
  recorder.Clear();
  EXPECT_TRUE(recorder.Drain().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
}

// Golden-format check: the emitted JSON is syntactically valid and each
// event carries the complete-event fields Perfetto requires.
TEST(TraceRecorderTest, ChromeJsonIsValidTraceEventFormat) {
  TraceRecorder recorder(256);
  recorder.set_enabled(true);
  recorder.SetThreadName("t\"quoted\"");  // escaping must survive
  { ScopedSpan span(recorder, "store", "pull"); }
  recorder.Emit("sim", "maintenance", 1000, 500, TraceRecorder::kSimPid, 2);
  recorder.SetVirtualThreadName(TraceRecorder::kSimPid, 2, "sim:maintenance");

  const std::string json = recorder.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* field :
       {"\"name\"", "\"cat\"", "\"ph\"", "\"ts\"", "\"dur\"", "\"pid\"",
        "\"tid\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("sim:maintenance"), std::string::npos);
}

// Concurrent recording from many threads: every span lands on its own
// thread's ring with its own tid (no cross-thread interleaving corruption).
TEST(TraceRecorderTest, ConcurrentRecording) {
  TraceRecorder recorder(1 << 12);
  recorder.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(recorder, "test", "op");
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<TraceEvent> events = recorder.Drain();
  EXPECT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  std::map<int64_t, int> per_tid;
  for (const TraceEvent& event : events) ++per_tid[event.tid];
  EXPECT_EQ(per_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, count] : per_tid) {
    EXPECT_EQ(count, kSpansPerThread) << "tid " << tid;
  }
  EXPECT_EQ(recorder.dropped(), 0u);
}

}  // namespace
}  // namespace oe::obs

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "pmem/device.h"
#include "pmem/pool.h"

namespace oe::pmem {
namespace {

PmemDeviceOptions SmallDevice(CrashFidelity fidelity = CrashFidelity::kStrict) {
  PmemDeviceOptions options;
  options.size_bytes = 4 << 20;
  options.crash_fidelity = fidelity;
  return options;
}

TEST(DeviceTimingTest, TableOneOrdering) {
  // Table I: DRAM beats PMem beats SSD on both axes.
  const auto dram = DramTiming();
  const auto pmem = PmemTiming();
  const auto ssd = SsdTiming();
  EXPECT_GT(dram.read_bandwidth_gbps, pmem.read_bandwidth_gbps);
  EXPECT_GT(pmem.read_bandwidth_gbps, ssd.read_bandwidth_gbps);
  EXPECT_LT(dram.read_latency_ns, pmem.read_latency_ns);
  EXPECT_LT(pmem.read_latency_ns, ssd.read_latency_ns);
  // Paper: PMem read BW about 1/3 of DRAM, write about 1/5.
  EXPECT_NEAR(dram.read_bandwidth_gbps / pmem.read_bandwidth_gbps, 3.0, 0.5);
  EXPECT_NEAR(dram.write_bandwidth_gbps / pmem.write_bandwidth_gbps, 5.0, 1.0);
}

TEST(DeviceTimingTest, CostScalesWithBytes) {
  const auto pmem = PmemTiming();
  EXPECT_LT(pmem.ReadCost(64), pmem.ReadCost(1 << 20));
  EXPECT_GE(pmem.ReadCost(0), pmem.read_latency_ns);
}

TEST(DeviceTest, CreateRejectsZeroSize) {
  PmemDeviceOptions options;
  options.size_bytes = 0;
  EXPECT_FALSE(PmemDevice::Create(options).ok());
}

TEST(DeviceTest, WriteReadRoundTrip) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  const std::string data = "hello pmem";
  device->Write(128, data.data(), data.size());
  std::string out(data.size(), '\0');
  device->Read(128, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST(DeviceTest, StatsAccountBytesAndOps) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  device->stats().Reset();
  char buf[256] = {};
  device->Write(0, buf, sizeof(buf));
  device->Read(0, buf, 128);
  device->ChargeRead(64);
  auto snap = device->stats().TakeSnapshot();
  EXPECT_EQ(snap.write_bytes, 256u);
  EXPECT_EQ(snap.read_bytes, 192u);
  EXPECT_EQ(snap.write_ops, 1u);
  EXPECT_EQ(snap.read_ops, 2u);
}

TEST(DeviceTest, UnpersistedWriteLostOnCrash) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  const uint64_t value = 0xdeadbeefcafef00dULL;
  device->Write(64, &value, sizeof(value));
  EXPECT_FALSE(device->IsPersisted(64, 8));
  device->SimulateCrash();
  uint64_t out = 1;
  device->Read(64, &out, sizeof(out));
  EXPECT_EQ(out, 0u);  // anonymous mapping starts zeroed
}

TEST(DeviceTest, PersistedWriteSurvivesCrash) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  const uint64_t value = 0xdeadbeefcafef00dULL;
  device->Write(64, &value, sizeof(value));
  device->Persist(64, sizeof(value));
  EXPECT_TRUE(device->IsPersisted(64, 8));
  device->SimulateCrash();
  uint64_t out = 0;
  device->Read(64, &out, sizeof(out));
  EXPECT_EQ(out, value);
}

TEST(DeviceTest, FlushWithoutDrainNotPersistent) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  const uint64_t value = 7;
  device->Write(0, &value, sizeof(value));
  device->Flush(0, sizeof(value));
  EXPECT_FALSE(device->IsPersisted(0, 8));
  device->Drain();
  EXPECT_TRUE(device->IsPersisted(0, 8));
}

TEST(DeviceTest, RawStorePlusPersistIsDurable) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  // PMDK style: store through the mapped pointer, then persist the range.
  *reinterpret_cast<uint64_t*>(device->base() + 256) = 99;
  device->Persist(256, 8);
  device->SimulateCrash();
  EXPECT_EQ(*reinterpret_cast<uint64_t*>(device->base() + 256), 99u);
}

TEST(DeviceTest, AtomicStore64IsImmediatelyDurable) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  device->AtomicStore64(512, 12345);
  EXPECT_EQ(device->AtomicLoad64(512), 12345u);
  device->SimulateCrash();
  EXPECT_EQ(device->AtomicLoad64(512), 12345u);
}

TEST(DeviceTest, CrashGranularityIsWholeLines) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  // Two values on the same cache line; persisting one persists the line.
  uint32_t a = 1, b = 2;
  device->Write(0, &a, 4);
  device->Write(4, &b, 4);
  device->Persist(0, 4);
  device->SimulateCrash();
  uint32_t out = 0;
  device->Read(4, &out, 4);
  EXPECT_EQ(out, 2u);  // same line as the persisted word
}

TEST(DeviceTest, AdversarialCrashKeepsPersistedData) {
  auto device =
      PmemDevice::Create(SmallDevice(CrashFidelity::kAdversarial)).ValueOrDie();
  std::vector<uint64_t> values(64);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1000 + i;
    device->Write(i * 64, &values[i], 8);
  }
  // Persist only even lines.
  for (size_t i = 0; i < values.size(); i += 2) device->Persist(i * 64, 8);
  device->SimulateCrash();
  int odd_survivors = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t out = 0;
    device->Read(i * 64, &out, 8);
    if (i % 2 == 0) {
      EXPECT_EQ(out, values[i]) << "persisted line " << i << " must survive";
    } else if (out == values[i]) {
      ++odd_survivors;
    }
  }
  // Some unpersisted lines survive, some do not (probabilistic eviction).
  EXPECT_GT(odd_survivors, 0);
  EXPECT_LT(odd_survivors, 32);
}

TEST(DeviceTest, CrashFidelityNoneKeepsEverything) {
  auto device =
      PmemDevice::Create(SmallDevice(CrashFidelity::kNone)).ValueOrDie();
  const uint64_t value = 31337;
  device->Write(0, &value, 8);
  device->SimulateCrash();
  uint64_t out = 0;
  device->Read(0, &out, 8);
  EXPECT_EQ(out, value);
  EXPECT_TRUE(device->IsPersisted(0, 8));
}

TEST(DeviceTest, FileBackedSurvivesReopen) {
  const std::string path = ::testing::TempDir() + "/oe_pmem_test.img";
  std::filesystem::remove(path);
  {
    auto options = SmallDevice(CrashFidelity::kNone);
    options.backing_file = path;
    auto device = PmemDevice::Create(options).ValueOrDie();
    const uint64_t value = 777;
    device->Write(1024, &value, 8);
    device->Persist(1024, 8);
  }
  {
    auto options = SmallDevice(CrashFidelity::kNone);
    options.backing_file = path;
    auto device = PmemDevice::Create(options).ValueOrDie();
    uint64_t out = 0;
    device->Read(1024, &out, 8);
    EXPECT_EQ(out, 777u);
  }
  std::filesystem::remove(path);
}

TEST(DeviceTest, CostOfChargesBothDirections) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  DeviceStats::Snapshot snap;
  snap.read_ops = 1;
  snap.read_bytes = 1 << 20;
  Nanos read_only = device->CostOf(snap);
  snap.write_ops = 1;
  snap.write_bytes = 1 << 20;
  EXPECT_GT(device->CostOf(snap), read_only);
}

// ---------- Fault-injection hooks (fault_plan.h) ----------

TEST(FaultPlanTest, CrashAtNthPersistSuppressesLaterWrites) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  uint64_t value = 1;
  device->Write(0, &value, sizeof(value));
  device->Persist(0, sizeof(value));  // pre-plan persist: not counted

  FaultPlan plan;
  plan.crash_at = 2;  // ordinals are relative to InstallFaultPlan
  device->InstallFaultPlan(plan);

  value = 2;
  device->Write(64, &value, sizeof(value));
  device->Persist(64, sizeof(value));  // event 1: persists normally
  EXPECT_FALSE(device->crashed());

  value = 3;
  device->Write(128, &value, sizeof(value));
  {
    PersistSiteGuard outer("unit");
    PersistSiteGuard inner("crash-here");
    device->Persist(128, sizeof(value));  // event 2: the crash point
  }
  EXPECT_TRUE(device->crashed());
  const FaultRecord record = device->fault_record();
  EXPECT_TRUE(record.triggered);
  EXPECT_EQ(record.kind, 'c');
  EXPECT_EQ(record.event, 2u);
  EXPECT_EQ(record.site, "unit/crash-here");

  // Doomed execution: every subsequent write is suppressed.
  value = 4;
  device->Write(64, &value, sizeof(value));
  device->Persist(64, sizeof(value));
  device->AtomicStore64(256, 99);

  device->SimulateCrash();
  device->ClearFault();
  uint64_t out = 0;
  device->Read(0, &out, sizeof(out));
  EXPECT_EQ(out, 1u);  // pre-plan persist survives
  device->Read(64, &out, sizeof(out));
  EXPECT_EQ(out, 2u);  // event 1 survives; the doomed overwrite does not
  device->Read(128, &out, sizeof(out));
  EXPECT_EQ(out, 0u);  // the crash-point persist itself was suppressed
  EXPECT_EQ(device->AtomicLoad64(256), 0u);
}

TEST(FaultPlanTest, TearPersistsOnlyALinePrefix) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  FaultPlan plan;
  plan.tear_at = 1;
  plan.tear_lines = 1;
  device->InstallFaultPlan(plan);

  std::vector<uint64_t> values = {11, 22, 33};
  for (size_t i = 0; i < values.size(); ++i) {
    device->Write(i * 64, &values[i], sizeof(uint64_t));
  }
  device->Persist(0, 3 * 64);  // torn: only the first line reaches PMem
  EXPECT_TRUE(device->crashed());
  EXPECT_EQ(device->fault_record().kind, 't');

  device->SimulateCrash();
  device->ClearFault();
  uint64_t out = 0;
  device->Read(0, &out, sizeof(out));
  EXPECT_EQ(out, 11u);
  device->Read(64, &out, sizeof(out));
  EXPECT_EQ(out, 0u);
  device->Read(128, &out, sizeof(out));
  EXPECT_EQ(out, 0u);
}

TEST(FaultPlanTest, DroppedFlushIsVisibleUntilCrash) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  FaultPlan plan;
  plan.drop_at = 1;
  device->InstallFaultPlan(plan);

  uint64_t value = 7;
  device->Write(0, &value, sizeof(value));
  device->Persist(0, sizeof(value));  // dropped
  EXPECT_FALSE(device->crashed());    // a drop is silent, not a crash
  EXPECT_EQ(device->fault_record().kind, 'd');

  // Pre-crash the write is still visible, and later persists still work.
  uint64_t out = 0;
  device->Read(0, &out, sizeof(out));
  EXPECT_EQ(out, 7u);
  value = 8;
  device->Write(64, &value, sizeof(value));
  device->Persist(64, sizeof(value));

  device->SimulateCrash();
  device->Read(0, &out, sizeof(out));
  EXPECT_EQ(out, 0u);  // the dropped flush never reached PMem
  device->Read(64, &out, sizeof(out));
  EXPECT_EQ(out, 8u);  // the one-shot plan did not affect later persists
}

TEST(FaultPlanTest, ClearFaultReenablesWrites) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  FaultPlan plan;
  plan.crash_at = 1;
  device->InstallFaultPlan(plan);
  uint64_t value = 5;
  device->Write(0, &value, sizeof(value));
  device->Persist(0, sizeof(value));
  ASSERT_TRUE(device->crashed());

  device->SimulateCrash();
  device->ClearFault();
  EXPECT_FALSE(device->crashed());
  value = 6;
  device->Write(0, &value, sizeof(value));
  device->Persist(0, sizeof(value));
  device->SimulateCrash();
  uint64_t out = 0;
  device->Read(0, &out, sizeof(out));
  EXPECT_EQ(out, 6u);
}

TEST(FaultPlanTest, EventTraceNamesEveryPersist) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  device->EnableEventTrace(true);
  device->InstallFaultPlan(FaultPlan{});
  {
    PersistSiteGuard site("alpha");
    device->Persist(0, 8);
  }
  device->Flush(64, 8);
  {
    PersistSiteGuard site("beta");
    device->Drain();
  }
  const auto trace = device->TakeEventTrace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], "alpha");
  EXPECT_EQ(trace[1], "beta");
}

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = PmemDevice::Create(SmallDevice()).ValueOrDie();
    pool_ = PmemPool::Create(device_.get()).ValueOrDie();
  }

  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<PmemPool> pool_;
};

TEST_F(PoolTest, AllocWriteReadBack) {
  const std::string data = "embedding entry payload";
  uint64_t offset =
      pool_->AllocWrite(data.data(), data.size(), /*type_tag=*/1).ValueOrDie();
  EXPECT_EQ(std::memcmp(pool_->Translate(offset), data.data(), data.size()),
            0);
  EXPECT_EQ(pool_->AllocatedBytes(), data.size());
}

TEST_F(PoolTest, AllocZeroFails) {
  EXPECT_FALSE(pool_->Alloc(0, 1).ok());
}

TEST_F(PoolTest, ExhaustionReturnsOutOfSpace) {
  // Grab 1 MiB blocks until the 4 MiB pool runs out.
  int allocated = 0;
  for (int i = 0; i < 16; ++i) {
    auto r = pool_->Alloc(1 << 20, 1);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsOutOfSpace());
      break;
    }
    ++allocated;
  }
  EXPECT_GT(allocated, 0);
  EXPECT_LT(allocated, 16);
}

TEST_F(PoolTest, FreeEnablesReuse) {
  uint64_t a = pool_->AllocWrite("aaaa", 4, 1).ValueOrDie();
  ASSERT_TRUE(pool_->Free(a).ok());
  uint64_t b = pool_->AllocWrite("bbbb", 4, 1).ValueOrDie();
  EXPECT_EQ(a, b);  // exact-fit free list reuses the block
}

TEST_F(PoolTest, DoubleFreeRejected) {
  uint64_t a = pool_->AllocWrite("aaaa", 4, 1).ValueOrDie();
  ASSERT_TRUE(pool_->Free(a).ok());
  EXPECT_FALSE(pool_->Free(a).ok());
}

TEST_F(PoolTest, RootsPersistAcrossCrash) {
  pool_->RootSet(3, 123456);
  EXPECT_EQ(pool_->RootGet(3), 123456u);
  device_->SimulateCrash();
  auto reopened = PmemPool::Open(device_.get()).ValueOrDie();
  EXPECT_EQ(reopened->RootGet(3), 123456u);
  EXPECT_EQ(reopened->RootGet(0), 0u);
}

TEST_F(PoolTest, CommittedAllocationsSurviveCrash) {
  std::vector<uint64_t> offsets;
  for (int i = 0; i < 10; ++i) {
    uint64_t v = 100 + i;
    offsets.push_back(pool_->AllocWrite(&v, sizeof(v), 7).ValueOrDie());
  }
  device_->SimulateCrash();
  auto reopened = PmemPool::Open(device_.get()).ValueOrDie();
  int seen = 0;
  reopened->ForEachAllocated(7, [&](uint64_t offset, uint64_t size) {
    EXPECT_EQ(size, 8u);
    uint64_t v = 0;
    std::memcpy(&v, reopened->Translate(offset), 8);
    EXPECT_GE(v, 100u);
    EXPECT_LT(v, 110u);
    ++seen;
  });
  EXPECT_EQ(seen, 10);
}

TEST_F(PoolTest, UncommittedAllocationRolledBackOnCrash) {
  uint64_t committed = pool_->AllocWrite("good", 4, 9).ValueOrDie();
  (void)committed;
  // Allocate but crash before CommitAlloc.
  uint64_t pending = pool_->Alloc(4, 9).ValueOrDie();
  device_->Write(pending, "evil", 4);
  device_->SimulateCrash();
  auto reopened = PmemPool::Open(device_.get()).ValueOrDie();
  int seen = 0;
  reopened->ForEachAllocated(9, [&](uint64_t, uint64_t) { ++seen; });
  EXPECT_EQ(seen, 1);  // only the committed block
  EXPECT_EQ(reopened->AllocatedBytes(), 4u);
}

TEST_F(PoolTest, ForEachFiltersByTypeTag) {
  (void)pool_->AllocWrite("a", 1, 1).ValueOrDie();
  (void)pool_->AllocWrite("b", 1, 2).ValueOrDie();
  (void)pool_->AllocWrite("c", 1, 1).ValueOrDie();
  int tag1 = 0, tag2 = 0;
  pool_->ForEachAllocated(1, [&](uint64_t, uint64_t) { ++tag1; });
  pool_->ForEachAllocated(2, [&](uint64_t, uint64_t) { ++tag2; });
  EXPECT_EQ(tag1, 2);
  EXPECT_EQ(tag2, 1);
}

TEST_F(PoolTest, OpenRejectsUnformattedDevice) {
  auto fresh = PmemDevice::Create(SmallDevice()).ValueOrDie();
  auto r = PmemPool::Open(fresh.get());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(PoolTest, RecreateDropsOldBlocks) {
  (void)pool_->AllocWrite("old", 3, 5).ValueOrDie();
  auto fresh = PmemPool::Create(device_.get()).ValueOrDie();
  int seen = 0;
  fresh->ForEachAllocated(5, [&](uint64_t, uint64_t) { ++seen; });
  EXPECT_EQ(seen, 0);
}

TEST_F(PoolTest, FreeBytesDecreasesWithAllocation) {
  const uint64_t before = pool_->FreeBytes();
  (void)pool_->AllocWrite(std::string(1000, 'x').data(), 1000, 1).ValueOrDie();
  EXPECT_LT(pool_->FreeBytes(), before);
}

// Property sweep: random alloc/free sequences followed by a crash always
// recover exactly the committed blocks.
class PoolCrashPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoolCrashPropertyTest, RecoversExactlyCommittedBlocks) {
  auto device = PmemDevice::Create(SmallDevice()).ValueOrDie();
  auto pool = PmemPool::Create(device.get()).ValueOrDie();
  Random rng(GetParam());

  std::map<uint64_t, uint64_t> live;  // offset -> value
  for (int step = 0; step < 200; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.6 || live.empty()) {
      uint64_t v = rng.Next();
      auto r = pool->AllocWrite(&v, sizeof(v), 42);
      if (r.ok()) live[std::move(r).ValueOrDie()] = v;
    } else if (dice < 0.8) {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      ASSERT_TRUE(pool->Free(it->first).ok());
      live.erase(it);
    } else {
      // Start an allocation and abandon it (simulates crash mid-insert).
      auto r = pool->Alloc(sizeof(uint64_t), 42);
      if (r.ok()) {
        uint64_t junk = rng.Next();
        device->Write(r.value(), &junk, sizeof(junk));
      }
    }
  }

  device->SimulateCrash();
  auto reopened = PmemPool::Open(device.get()).ValueOrDie();
  std::map<uint64_t, uint64_t> recovered;
  reopened->ForEachAllocated(42, [&](uint64_t offset, uint64_t size) {
    ASSERT_EQ(size, sizeof(uint64_t));
    uint64_t v = 0;
    std::memcpy(&v, reopened->Translate(offset), sizeof(v));
    recovered[offset] = v;
  });
  EXPECT_EQ(recovered, live);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolCrashPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace oe::pmem

// Lookahead prefetch pipeline (BagPipe-style): oracle key prediction,
// PrefetchCache coherence semantics, and end-to-end trainer equivalence.
//
// The load-bearing claims under test:
//   - the oracle predicts exactly the keys the trainer will pull (same
//     WorkerSeed/BatchSeed derivation), and PrefetchSet excludes keys an
//     intermediate batch writes;
//   - the cache never serves a pre-push value after the push invalidated
//     it, including fills whose RPC was in flight across the invalidation
//     (ticket poisoning) — stressed below with concurrent pushers racing
//     fillers, which is also the TSan workload for the PipelinedStore
//     pull-copy stripe;
//   - with one worker, training at lookahead_depth > 0 is bit-identical
//     to depth 0, with and without an injected-fault network (drops /
//     duplicates degrade fills to the synchronous pull, never corrupt).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "cache/prefetch_cache.h"
#include "net/faulty_transport.h"
#include "ps/ps_client.h"
#include "ps/ps_cluster.h"
#include "train/sync_trainer.h"
#include "workload/criteo.h"
#include "workload/lookahead.h"

namespace oe {
namespace {

using cache::PrefetchCache;
using storage::EntryId;
using train::SyncTrainer;
using train::TrainerConfig;
using workload::CriteoSynthConfig;
using workload::LookaheadOracle;

// ---------- LookaheadOracle ----------

CriteoSynthConfig SmallData() {
  CriteoSynthConfig config;
  config.base_cardinality = 300;
  config.categorical_fields = 8;
  config.dense_fields = 4;
  return config;
}

TEST(LookaheadOracleTest, PredictsExactlyTheTrainerKeySets) {
  const CriteoSynthConfig data = SmallData();
  constexpr int kWorkers = 3;
  constexpr size_t kBatchSize = 16;
  LookaheadOracle oracle(data, kWorkers, kBatchSize);

  // Replay the trainer's derivation by hand: per worker, a stream seeded
  // with WorkerSeed, repositioned per batch with BatchSeed.
  for (uint64_t batch = 1; batch <= 5; ++batch) {
    std::set<EntryId> expected;
    for (int w = 0; w < kWorkers; ++w) {
      // Exactly the trainer's derivation: per-worker construction seed,
      // then repositioned to the global batch.
      CriteoSynthConfig worker_data = data;
      worker_data.seed = workload::WorkerSeed(data.seed, w);
      workload::CriteoSynth stream(worker_data);
      stream.Reseed(workload::BatchSeed(worker_data.seed, batch));
      for (const auto& example : stream.NextBatch(kBatchSize)) {
        expected.insert(example.cat_keys.begin(), example.cat_keys.end());
      }
    }
    const std::vector<EntryId> want(expected.begin(), expected.end());
    EXPECT_EQ(oracle.KeysOf(batch), want) << "batch " << batch;
  }
}

TEST(LookaheadOracleTest, KeysOfIsStableAcrossQueries) {
  LookaheadOracle oracle(SmallData(), 2, 16);
  // Out-of-order and repeated queries must not perturb each other (each
  // query reseeds the mirrored stream).
  const std::vector<EntryId> b3 = oracle.KeysOf(3);
  const std::vector<EntryId> b1 = oracle.KeysOf(1);
  EXPECT_EQ(oracle.KeysOf(3), b3);
  EXPECT_EQ(oracle.KeysOf(1), b1);
  oracle.EvictBelow(3);  // drops the memo, not the determinism
  EXPECT_EQ(oracle.KeysOf(3), b3);
}

TEST(LookaheadOracleTest, PrefetchSetExcludesIntermediateWriters) {
  LookaheadOracle oracle(SmallData(), 2, 16);
  const uint64_t frontier = 2, target = 5;
  const std::vector<EntryId> target_keys = oracle.KeysOf(target);
  std::set<EntryId> writers;
  for (uint64_t b = frontier; b < target; ++b) {
    const auto& keys = oracle.KeysOf(b);
    writers.insert(keys.begin(), keys.end());
  }

  const std::vector<EntryId> safe = oracle.PrefetchSet(frontier, target);
  // safe == target keys minus writer-set, exactly.
  std::set<EntryId> target_set(target_keys.begin(), target_keys.end());
  for (const EntryId key : safe) {
    EXPECT_TRUE(target_set.count(key)) << key << " not a target key";
    EXPECT_FALSE(writers.count(key)) << key << " has an intermediate writer";
  }
  for (const EntryId key : target_keys) {
    if (!writers.count(key)) {
      EXPECT_TRUE(std::binary_search(safe.begin(), safe.end(), key))
          << "safe key " << key << " missing";
    }
  }
  // With skewed popularity some target keys always recur in the window.
  EXPECT_LT(safe.size(), target_keys.size());
  EXPECT_FALSE(safe.empty());

  // Degenerate window: PrefetchSet(t, t) is the full key set.
  EXPECT_EQ(oracle.PrefetchSet(target, target), target_keys);
}

// ---------- PrefetchCache ----------

std::vector<float> Ramp(size_t n, float base) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = base + static_cast<float>(i);
  return v;
}

TEST(PrefetchCacheTest, FillLookupInvalidateRoundTrip) {
  PrefetchCache cache(4, 0);
  std::vector<EntryId> to_fetch;
  const uint64_t ticket = cache.BeginFill({10, 11}, &to_fetch);
  EXPECT_EQ(to_fetch, (std::vector<EntryId>{10, 11}));
  EXPECT_EQ(cache.inflight(), 2u);

  float out[4];
  EXPECT_FALSE(cache.Lookup(10, out));  // filling = miss, never blocks

  const std::vector<float> values = Ramp(8, 100);
  cache.CompleteFill(ticket, to_fetch, values.data());
  EXPECT_EQ(cache.resident(), 2u);
  ASSERT_TRUE(cache.Lookup(11, out));
  EXPECT_EQ(out[0], 104.0f);
  EXPECT_EQ(out[3], 107.0f);

  const EntryId pushed[] = {11};
  cache.Invalidate(pushed, 1);
  EXPECT_FALSE(cache.Lookup(11, out));
  EXPECT_TRUE(cache.Lookup(10, out));  // untouched key stays resident

  const auto stats = cache.stats();
  EXPECT_EQ(stats.fills, 2u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(PrefetchCacheTest, InvalidatePoisonsInFlightFill) {
  PrefetchCache cache(2, 0);
  std::vector<EntryId> to_fetch;
  const uint64_t ticket = cache.BeginFill({7}, &to_fetch);

  // The push lands while the fill RPC is in flight: the fetched value
  // predates the push and must never become visible.
  const EntryId pushed[] = {7};
  cache.Invalidate(pushed, 1);

  const std::vector<float> values = {1, 2};
  cache.CompleteFill(ticket, to_fetch, values.data());
  float out[2];
  EXPECT_FALSE(cache.Lookup(7, out));
  EXPECT_EQ(cache.resident(), 0u);
  EXPECT_EQ(cache.stats().stale_fills, 1u);
  EXPECT_EQ(cache.stats().fills, 0u);

  // A later fill of the same key works normally (poison is per-ticket).
  to_fetch.clear();
  const uint64_t ticket2 = cache.BeginFill({7}, &to_fetch);
  ASSERT_EQ(to_fetch.size(), 1u);
  cache.CompleteFill(ticket2, to_fetch, values.data());
  EXPECT_TRUE(cache.Lookup(7, out));
}

TEST(PrefetchCacheTest, DedupsResidentAndInFlightKeys) {
  PrefetchCache cache(2, 0);
  std::vector<EntryId> first;
  const uint64_t t1 = cache.BeginFill({1, 2}, &first);

  // Key 1 is in flight for an earlier target: a later target's fill must
  // not re-fetch it (cross-batch dedup).
  std::vector<EntryId> second;
  cache.BeginFill({1, 3}, &second);
  EXPECT_EQ(second, (std::vector<EntryId>{3}));

  const std::vector<float> values = Ramp(4, 0);
  cache.CompleteFill(t1, first, values.data());
  std::vector<EntryId> third;
  cache.BeginFill({2, 4}, &third);  // 2 resident -> dedup
  EXPECT_EQ(third, (std::vector<EntryId>{4}));
}

TEST(PrefetchCacheTest, CapacityCapDropsNotEvicts) {
  PrefetchCache cache(2, 3);
  std::vector<EntryId> to_fetch;
  cache.BeginFill({1, 2, 3, 4, 5}, &to_fetch);
  EXPECT_EQ(to_fetch.size(), 3u);
  EXPECT_EQ(cache.stats().dropped_fills, 2u);
}

TEST(PrefetchCacheTest, AbortFillWithdrawsOnlyItsTicket) {
  PrefetchCache cache(2, 0);
  std::vector<EntryId> a, b;
  const uint64_t ta = cache.BeginFill({1}, &a);
  const uint64_t tb = cache.BeginFill({2}, &b);
  cache.AbortFill(ta, a);  // RPC failed: withdraw so a retry can re-fetch
  EXPECT_EQ(cache.inflight(), 1u);
  EXPECT_EQ(cache.stats().aborted_fills, 1u);

  // The other ticket's fill is unaffected.
  const std::vector<float> values = {5, 6};
  cache.CompleteFill(tb, b, values.data());
  float out[2];
  EXPECT_TRUE(cache.Lookup(2, out));

  // Re-registering the aborted key fetches it again.
  std::vector<EntryId> retry;
  cache.BeginFill({1}, &retry);
  EXPECT_EQ(retry, (std::vector<EntryId>{1}));
}

TEST(PrefetchCacheTest, ClearDropsInFlightPlaceholders) {
  PrefetchCache cache(2, 0);
  std::vector<EntryId> to_fetch;
  const uint64_t ticket = cache.BeginFill({9}, &to_fetch);
  cache.Clear();
  EXPECT_EQ(cache.inflight(), 0u);
  // The orphaned CompleteFill is a no-op, not a resurrection.
  const std::vector<float> values = {1, 2};
  cache.CompleteFill(ticket, to_fetch, values.data());
  float out[2];
  EXPECT_FALSE(cache.Lookup(9, out));
}

// ---------- Coherence stress: pushes racing fills ----------

// A pusher thread drives the training push protocol on a real pipelined
// cluster while filler threads prefetch the same keys into a PrefetchCache
// and checker threads consume it. Values are version-encoded: SGD with
// lr=1 and gradient 1 decrements every weight by exactly 1 per push, so a
// resident cache value proves which pushes its fill observed. Invariant: a
// lookup that starts after push c was invalidated must see a value at or
// below init - c — a violation means a stale fill was served.
//
// This races Pull's per-key data copy against concurrent in-place gradient
// Applies, which is precisely what the PipelinedStore push-stripe guards —
// run it under TSan (labeled) to check the locking, and as a plain test to
// check the ticket-poisoning logic statistically.
TEST(PrefetchCoherenceStressTest, ConcurrentPushesNeverYieldStaleValues) {
  constexpr uint32_t kDim = 4;
  constexpr int kKeys = 48;
  constexpr int kBatches = 250;
  constexpr int kFillers = 3;
  constexpr int kCheckers = 2;

  ps::ClusterOptions options;
  options.num_nodes = 2;
  options.kind = storage::StoreKind::kPipelined;
  options.store.dim = kDim;
  options.store.optimizer.kind = storage::OptimizerKind::kSgd;
  options.store.optimizer.learning_rate = 1.0f;
  options.store.cache_bytes = 64 * 1024;
  options.pmem_bytes_per_node = 64ULL << 20;
  auto cluster = ps::PsCluster::Create(options).ValueOrDie();

  std::vector<EntryId> keys(kKeys);
  for (int i = 0; i < kKeys; ++i) keys[i] = static_cast<EntryId>(i);
  std::vector<float> init(kKeys * kDim);
  for (int i = 0; i < kKeys; ++i) {
    options.store.initializer.Fill(keys[i], init.data() + i * kDim, kDim);
  }

  PrefetchCache cache(kDim, 0);
  std::atomic<int> pushed_and_invalidated{0};
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::atomic<uint64_t> checked{0};

  {
    // Materialize every key at batch 1 before any thread races, so fills
    // (which pull at future batch ids) never first-touch a key.
    std::vector<float> warmup(kKeys * kDim);
    ASSERT_TRUE(cluster->client()
                    .Pull(keys.data(), keys.size(), 1, warmup.data())
                    .ok());
  }

  std::thread pusher([&] {
    auto client = cluster->NewClient();
    std::vector<float> grads(kKeys * kDim, 1.0f);
    std::vector<float> weights(kKeys * kDim);
    for (int b = 1; b <= kBatches; ++b) {
      const uint64_t batch = static_cast<uint64_t>(b);
      ASSERT_TRUE(
          client->Pull(keys.data(), keys.size(), batch, weights.data()).ok());
      ASSERT_TRUE(client->FinishPullPhase(batch).ok());
      ASSERT_TRUE(
          client->Push(keys.data(), keys.size(), grads.data(), batch).ok());
      // The coherence point: invalidate after the push returns, then
      // publish the count — mirroring the trainer's push phase.
      cache.Invalidate(keys.data(), keys.size());
      pushed_and_invalidated.store(b, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> fillers;
  for (int f = 0; f < kFillers; ++f) {
    fillers.emplace_back([&] {
      auto client = cluster->NewClient();
      std::vector<EntryId> to_fetch;
      std::vector<float> values;
      while (!done.load(std::memory_order_acquire)) {
        to_fetch.clear();
        const uint64_t ticket = cache.BeginFill(keys, &to_fetch);
        if (to_fetch.empty()) continue;
        values.resize(to_fetch.size() * kDim);
        const uint64_t batch = static_cast<uint64_t>(
            pushed_and_invalidated.load(std::memory_order_acquire) + 2);
        if (client
                ->Pull(to_fetch.data(), to_fetch.size(), batch, values.data())
                .ok()) {
          cache.CompleteFill(ticket, to_fetch, values.data());
        } else {
          cache.AbortFill(ticket, to_fetch);
        }
      }
    });
  }

  std::vector<std::thread> checkers;
  for (int c = 0; c < kCheckers; ++c) {
    checkers.emplace_back([&] {
      float out[kDim];
      while (!done.load(std::memory_order_acquire)) {
        const int floor =
            pushed_and_invalidated.load(std::memory_order_acquire);
        for (int i = 0; i < kKeys; ++i) {
          if (!cache.Lookup(keys[i], out)) continue;
          checked.fetch_add(1, std::memory_order_relaxed);
          // 0.5f of slack absorbs float rounding at large magnitudes;
          // a stale fill is off by >= 1 full push step.
          if (out[0] > init[i * kDim] - static_cast<float>(floor) + 0.5f) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  pusher.join();
  for (auto& t : fillers) t.join();
  for (auto& t : checkers) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(checked.load(), 0u);  // the checkers actually saw hits
  const auto stats = cache.stats();
  EXPECT_GT(stats.fills, 0u);
  // The race is real: some fills must have been poisoned mid-flight.
  EXPECT_GT(stats.stale_fills + stats.invalidations, 0u);
}

// ---------- End-to-end: trainer equivalence ----------

struct TrainSetup {
  std::unique_ptr<ps::PsCluster> cluster;
  std::unique_ptr<SyncTrainer> trainer;
};

// One worker + SGD + deterministic data: the bit-identity preconditions
// (multiple workers interleave pushes nondeterministically in float).
TrainSetup MakeSetup(int workers, int lookahead_depth, bool inject_faults) {
  TrainSetup setup;
  ps::ClusterOptions options;
  options.num_nodes = 2;
  options.kind = storage::StoreKind::kPipelined;
  options.store.dim = 8;
  options.store.optimizer.kind = storage::OptimizerKind::kSgd;
  options.store.optimizer.learning_rate = 0.05f;
  options.store.cache_bytes = 256 * 1024;
  options.pmem_bytes_per_node = 64ULL << 20;
  options.crash_fidelity = pmem::CrashFidelity::kStrict;
  if (inject_faults) {
    options.inject_net_faults = true;
    options.net_fault_seed = 23;
    options.rpc_options.max_retries = 50;
    options.rpc_options.backoff_initial_ms = 0;
  }
  setup.cluster = ps::PsCluster::Create(options).ValueOrDie();

  workload::CriteoSynthConfig data_config = SmallData();
  TrainerConfig trainer_config;
  trainer_config.workers = workers;
  trainer_config.batch_size = 32;
  trainer_config.deterministic_data = true;
  trainer_config.lookahead_depth = lookahead_depth;
  trainer_config.model.num_fields = 8;
  trainer_config.model.dense_dim = 4;
  trainer_config.model.embed_dim = 8;
  trainer_config.model.hidden = {16};
  trainer_config.model.dense_learning_rate = 0.02f;
  setup.trainer = std::make_unique<SyncTrainer>(setup.cluster.get(),
                                                data_config, trainer_config);
  return setup;
}

void ExpectSameFinalModel(TrainSetup& golden, TrainSetup& subject) {
  ps::PsClient& gc = golden.cluster->client();
  ps::PsClient& sc = subject.cluster->client();
  ASSERT_EQ(gc.TotalEntries().ValueOrDie(), sc.TotalEntries().ValueOrDie());

  uint64_t compared = 0;
  for (EntryId key = 0; key < 3000; ++key) {
    auto g = gc.Peek(key);
    auto s = sc.Peek(key);
    ASSERT_EQ(g.ok(), s.ok()) << "key " << key;
    if (!g.ok()) continue;
    EXPECT_EQ(std::move(g).ValueOrDie(), std::move(s).ValueOrDie())
        << "key " << key;
    ++compared;
  }
  EXPECT_GT(compared, 100u);

  EXPECT_EQ(golden.trainer->model().SaveDense(),
            subject.trainer->model().SaveDense());
}

TEST(SyncTrainerPrefetchTest, BitIdenticalToDepthZeroSingleWorker) {
  constexpr uint64_t kBatches = 25;
  auto golden = MakeSetup(1, 0, /*inject_faults=*/false);
  ASSERT_TRUE(golden.trainer->TrainBatches(kBatches).ok());

  for (const int depth : {2, 4}) {
    auto subject = MakeSetup(1, depth, /*inject_faults=*/false);
    ASSERT_TRUE(subject.trainer->TrainBatches(kBatches).ok());
    ExpectSameFinalModel(golden, subject);
    EXPECT_DOUBLE_EQ(golden.trainer->progress().mean_logloss,
                     subject.trainer->progress().mean_logloss);
    // The pipeline actually ran: lookups hit.
    EXPECT_GT(subject.trainer->phase_totals().prefetch_hits, 0u)
        << "depth " << depth;
    EXPECT_EQ(subject.trainer->prefetcher()->fill_errors(), 0u);
  }
}

TEST(SyncTrainerPrefetchTest, FaultyNetworkDegradesNeverCorrupts) {
  // Drops, duplicates, and lost responses on every node: fill RPCs that
  // exhaust retries are aborted (keys fall through to the synchronous
  // pull), duplicated fills are deduplicated server-side, and the result
  // is still bit-identical to a fault-free depth-0 run.
  constexpr uint64_t kBatches = 20;
  auto golden = MakeSetup(1, 0, /*inject_faults=*/false);
  ASSERT_TRUE(golden.trainer->TrainBatches(kBatches).ok());

  auto subject = MakeSetup(1, 3, /*inject_faults=*/true);
  for (uint32_t node = 0; node < 2; ++node) {
    net::NetFaultSpec spec;
    spec.drop_rate = 0.05;
    spec.duplicate_rate = 0.1;
    spec.fail_response_rate = 0.05;
    subject.cluster->faulty_transport()->SetFaultSpec(node, spec);
  }
  ASSERT_TRUE(subject.trainer->TrainBatches(kBatches).ok());
  ExpectSameFinalModel(golden, subject);
  EXPECT_DOUBLE_EQ(golden.trainer->progress().mean_logloss,
                   subject.trainer->progress().mean_logloss);
  // The schedule really injected faults.
  EXPECT_GT(subject.cluster->faulty_transport()->FaultStats(0).dropped +
                subject.cluster->faulty_transport()->FaultStats(1).dropped,
            0u);
}

TEST(SyncTrainerPrefetchTest, MultiWorkerPrefetchTrainsEquivalently) {
  // Multiple workers break float bit-identity (push interleaving), but the
  // math must stay the same: matching loss within the usual tolerance,
  // and the same entry universe.
  constexpr uint64_t kBatches = 30;
  auto base = MakeSetup(3, 0, /*inject_faults=*/false);
  auto prefetch = MakeSetup(3, 3, /*inject_faults=*/false);
  ASSERT_TRUE(base.trainer->TrainBatches(kBatches).ok());
  ASSERT_TRUE(prefetch.trainer->TrainBatches(kBatches).ok());
  EXPECT_EQ(base.cluster->client().TotalEntries().ValueOrDie(),
            prefetch.cluster->client().TotalEntries().ValueOrDie());
  EXPECT_NEAR(base.trainer->progress().mean_logloss,
              prefetch.trainer->progress().mean_logloss, 0.05);
  const auto totals = prefetch.trainer->phase_totals();
  EXPECT_GT(totals.prefetch_hits, 0u);
}

TEST(SyncTrainerPrefetchTest, CrashRecoveryResetsThePipeline) {
  // A crash rollback erases the future the cache was prefetched from;
  // RecoverAfterCrash must clear it and training must resume bit-identical
  // to an uninterrupted prefetching run.
  auto MakeCheckpointed = [](int depth) {
    TrainSetup setup;
    ps::ClusterOptions options;
    options.num_nodes = 2;
    options.kind = storage::StoreKind::kPipelined;
    options.store.dim = 8;
    options.store.optimizer.kind = storage::OptimizerKind::kSgd;
    options.store.optimizer.learning_rate = 0.05f;
    options.store.cache_bytes = 256 * 1024;
    options.pmem_bytes_per_node = 64ULL << 20;
    options.log_bytes_per_node = 64ULL << 20;
    options.crash_fidelity = pmem::CrashFidelity::kStrict;
    setup.cluster = ps::PsCluster::Create(options).ValueOrDie();
    workload::CriteoSynthConfig data_config = SmallData();
    TrainerConfig trainer_config;
    trainer_config.workers = 1;
    trainer_config.batch_size = 32;
    trainer_config.checkpoint_interval = 5;
    trainer_config.durable_checkpoints = true;
    trainer_config.deterministic_data = true;
    trainer_config.lookahead_depth = depth;
    trainer_config.model.num_fields = 8;
    trainer_config.model.dense_dim = 4;
    trainer_config.model.embed_dim = 8;
    trainer_config.model.hidden = {16};
    trainer_config.model.dense_learning_rate = 0.02f;
    setup.trainer = std::make_unique<SyncTrainer>(
        setup.cluster.get(), data_config, trainer_config);
    return setup;
  };

  auto uninterrupted = MakeCheckpointed(2);
  ASSERT_TRUE(uninterrupted.trainer->TrainBatches(20).ok());

  auto crashed = MakeCheckpointed(2);
  ASSERT_TRUE(crashed.trainer->TrainBatches(12).ok());
  crashed.cluster->SimulateCrashAll();
  ASSERT_TRUE(crashed.trainer->RecoverAfterCrash().ok());
  EXPECT_EQ(crashed.trainer->next_batch(), 11u);
  // The rolled-back future must be gone from the cache.
  EXPECT_EQ(crashed.trainer->prefetch_cache()->resident(), 0u);
  ASSERT_TRUE(
      crashed.trainer->TrainBatches(20 - (crashed.trainer->next_batch() - 1))
          .ok());

  ExpectSameFinalModel(uninterrupted, crashed);
}

}  // namespace
}  // namespace oe

// Cross-cutting property tests: optimizer state must survive eviction and
// recovery, malformed RPC bytes must never crash a PS node, the simulator
// must be deterministic, and assorted edge cases across modules.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "ps/ps_service.h"
#include "sim/training_sim.h"
#include "storage/dram_store.h"
#include "storage/pipelined_store.h"
#include "test_util.h"

namespace oe {
namespace {

using storage::DramStore;
using storage::EntryId;
using storage::OptimizerKind;
using storage::PipelinedStore;
using storage::StoreConfig;

constexpr uint32_t kDim = 8;

std::unique_ptr<pmem::PmemDevice> MakeDevice(uint64_t size = 32 << 20) {
  return oe::test::MakeDevice({.size_bytes = size});
}

// ---------- Optimizer state durability ----------

// The same gradient sequence applied through a store whose cache is so
// small that every entry round-trips through PMem between batches must
// produce exactly the trajectory of an all-DRAM reference. This fails if
// optimizer state (AdaGrad accumulators, Adam moments) is dropped or
// corrupted by flush/evict/load.
class OptimizerDurabilityTest
    : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerDurabilityTest, StateSurvivesEvictionRoundTrips) {
  StoreConfig config;
  config.dim = kDim;
  config.optimizer.kind = GetParam();
  config.optimizer.learning_rate = 0.1f;
  config.cache_bytes = 1;  // capacity clamps to one entry: constant churn

  auto device = MakeDevice();
  auto pmem_store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  StoreConfig dram_config = config;
  dram_config.cache_bytes = 64 << 20;
  auto dram_store = DramStore::Create(dram_config, nullptr).ValueOrDie();

  const uint64_t seed = oe::test::TestSeed(55);
  SCOPED_TRACE("OE_TEST_SEED=" + std::to_string(seed));
  Random rng(seed);
  std::vector<EntryId> keys = {1, 2, 3, 4, 5, 6, 7, 8};
  for (uint64_t batch = 1; batch <= 15; ++batch) {
    std::vector<float> w(keys.size() * kDim);
    ASSERT_TRUE(
        pmem_store->Pull(keys.data(), keys.size(), batch, w.data()).ok());
    pmem_store->FinishPullPhase(batch);
    ASSERT_TRUE(
        dram_store->Pull(keys.data(), keys.size(), batch, w.data()).ok());
    std::vector<float> grads(keys.size() * kDim);
    for (auto& g : grads) g = rng.UniformFloat(-1.0f, 1.0f);
    ASSERT_TRUE(
        pmem_store->Push(keys.data(), keys.size(), grads.data(), batch).ok());
    ASSERT_TRUE(
        dram_store->Push(keys.data(), keys.size(), grads.data(), batch).ok());
  }
  pmem_store->WaitMaintenance(15);
  EXPECT_GT(pmem_store->stats().evictions.load(), 50u);  // real churn
  for (EntryId key : keys) {
    auto pmem_weights = pmem_store->Peek(key).ValueOrDie();
    auto dram_weights = dram_store->Peek(key).ValueOrDie();
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_NEAR(pmem_weights[d], dram_weights[d], 1e-5)
          << "key " << key << " " << OptimizerKindToString(GetParam());
    }
  }
}

TEST_P(OptimizerDurabilityTest, StateSurvivesCrashRecovery) {
  StoreConfig config;
  config.dim = kDim;
  config.optimizer.kind = GetParam();
  config.optimizer.learning_rate = 0.1f;
  config.cache_bytes = 8 * 1024;

  auto device = MakeDevice();
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  std::vector<EntryId> keys = {10, 20};
  const uint64_t seed = oe::test::TestSeed(7);
  SCOPED_TRACE("OE_TEST_SEED=" + std::to_string(seed));
  Random rng(seed);

  auto run_batch = [&](uint64_t batch) {
    std::vector<float> w(keys.size() * kDim);
    ASSERT_TRUE(store->Pull(keys.data(), keys.size(), batch, w.data()).ok());
    store->FinishPullPhase(batch);
    std::vector<float> grads(keys.size() * kDim);
    for (auto& g : grads) g = rng.UniformFloat(-1.0f, 1.0f);
    ASSERT_TRUE(
        store->Push(keys.data(), keys.size(), grads.data(), batch).ok());
  };

  for (uint64_t batch = 1; batch <= 5; ++batch) run_batch(batch);
  ASSERT_TRUE(store->RequestCheckpoint(5).ok());
  ASSERT_TRUE(store->DrainCheckpoints().ok());

  // Record the trajectory continuing WITHOUT a crash...
  Random continuation_rng = rng;
  std::vector<float> grads6(keys.size() * kDim);
  for (auto& g : grads6) g = continuation_rng.UniformFloat(-1.0f, 1.0f);

  device->SimulateCrash();
  ASSERT_TRUE(store->RecoverFromCrash().ok());

  // ...and replay the same batch 6 post-recovery. With intact optimizer
  // state the result must be deterministic and finite.
  std::vector<float> w(keys.size() * kDim);
  ASSERT_TRUE(store->Pull(keys.data(), keys.size(), 6, w.data()).ok());
  store->FinishPullPhase(6);
  ASSERT_TRUE(store->Push(keys.data(), keys.size(), grads6.data(), 6).ok());
  for (EntryId key : keys) {
    for (float v : store->Peek(key).ValueOrDie()) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Optimizers, OptimizerDurabilityTest,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kAdaGrad,
                                           OptimizerKind::kAdam),
                         [](const auto& info) {
                           return std::string(
                               storage::OptimizerKindToString(info.param));
                         });

// ---------- RPC robustness: fuzzing the service decoder ----------

TEST(PsServiceFuzzTest, MalformedRequestsNeverCrash) {
  StoreConfig config;
  config.dim = kDim;
  auto device = MakeDevice();
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  ps::PsService service(store.get());

  const uint64_t seed = oe::test::TestSeed(1234);
  SCOPED_TRACE("OE_TEST_SEED=" + std::to_string(seed));
  Random rng(seed);
  net::Buffer request;
  net::Buffer response;
  int rejected = 0;
  for (int i = 0; i < 3000; ++i) {
    const uint32_t method = static_cast<uint32_t>(rng.Uniform(14));
    request.resize(rng.Uniform(64));
    for (auto& b : request) b = static_cast<uint8_t>(rng.Next());
    const Status status = service.Handle(method, request, &response);
    if (!status.ok()) ++rejected;
    // The store must stay intact regardless.
  }
  EXPECT_GT(rejected, 0);
  auto peek = store->Peek(0);
  EXPECT_TRUE(peek.ok() || peek.status().IsNotFound());
}

TEST(PsServiceFuzzTest, TruncatedValidRequestsRejectedCleanly) {
  StoreConfig config;
  config.dim = kDim;
  auto device = MakeDevice();
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  ps::PsService service(store.get());

  // A well-formed pull request (RpcHeader + batch + keys), truncated at
  // every length.
  net::Buffer good;
  net::Writer writer(&good);
  writer.PutU64(7);  // header: client_id
  writer.PutU64(0);  // header: seq (read: no dedup)
  writer.PutU64(0);  // header: route_epoch (diagnostic)
  writer.PutU64(1);
  std::vector<uint64_t> keys = {1, 2, 3};
  writer.PutU64Span(keys.data(), keys.size());

  net::Buffer response;
  for (size_t cut = 0; cut < good.size(); ++cut) {
    net::Buffer truncated(good.begin(), good.begin() + cut);
    const Status status = service.Handle(
        static_cast<uint32_t>(ps::PsMethod::kPull), truncated, &response);
    EXPECT_FALSE(status.ok()) << "cut=" << cut;
  }
  // The untruncated request works.
  EXPECT_TRUE(service
                  .Handle(static_cast<uint32_t>(ps::PsMethod::kPull), good,
                          &response)
                  .ok());
}

// ---------- Simulator determinism ----------

TEST(SimDeterminismTest, IdenticalSeedsIdenticalReports) {
  sim::SimOptions options;
  options.kind = storage::StoreKind::kPipelined;
  options.num_gpus = 4;
  options.num_keys = 1 << 16;
  options.keys_per_worker_batch = 1024;
  options.rounds = 6;
  options.num_nodes = 2;
  options.store.dim = 16;
  options.store.cache_bytes = 1 << 20;
  options.pmem_bytes_per_node = 128ULL << 20;

  auto a = sim::TrainingSimulator(options).Run();
  auto b = sim::TrainingSimulator(options).Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().epoch_ns, b.value().epoch_ns);
  EXPECT_EQ(a.value().miss_rate, b.value().miss_rate);
  EXPECT_EQ(a.value().pmem_write_bytes, b.value().pmem_write_bytes);
}

// ---------- Store edge cases ----------

TEST(StoreEdgeTest, ZeroKeyPullAndPushSucceed) {
  StoreConfig config;
  config.dim = kDim;
  auto device = MakeDevice();
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  EXPECT_TRUE(store->Pull(nullptr, 0, 1, nullptr).ok());
  store->FinishPullPhase(1);
  EXPECT_TRUE(store->Push(nullptr, 0, nullptr, 1).ok());
}

TEST(StoreEdgeTest, DuplicateKeysInOnePull) {
  StoreConfig config;
  config.dim = kDim;
  auto device = MakeDevice();
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  std::vector<EntryId> keys = {7, 7, 7, 8};
  std::vector<float> w(keys.size() * kDim);
  ASSERT_TRUE(store->Pull(keys.data(), keys.size(), 1, w.data()).ok());
  // All duplicates return identical weights.
  for (uint32_t d = 0; d < kDim; ++d) {
    EXPECT_EQ(w[d], w[kDim + d]);
    EXPECT_EQ(w[d], w[2 * kDim + d]);
  }
  EXPECT_EQ(store->EntryCount(), 2u);
}

TEST(StoreEdgeTest, PoolExhaustionSurfacesAsError) {
  StoreConfig config;
  config.dim = 64;
  config.cache_bytes = 1;  // force every entry through PMem
  pmem::PmemDeviceOptions device_options;
  device_options.size_bytes = 1 << 20;  // tiny pool
  device_options.crash_fidelity = pmem::CrashFidelity::kNone;
  auto device = pmem::PmemDevice::Create(device_options).ValueOrDie();
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();

  std::vector<EntryId> keys(64);
  std::vector<float> w(keys.size() * 64);
  bool saw_failure = false;
  SetLogLevel(LogLevel::kFatal);  // expected OutOfSpace noise
  for (uint64_t batch = 1; batch <= 64 && !saw_failure; ++batch) {
    std::iota(keys.begin(), keys.end(), batch * 1000);
    Status status = store->Pull(keys.data(), keys.size(), batch, w.data());
    store->FinishPullPhase(batch);
    store->WaitMaintenance(batch);
    saw_failure = !status.ok();
  }
  SetLogLevel(LogLevel::kInfo);
  // Exhaustion must surface as a Status (via direct create) or be logged
  // by maintenance; the store must not crash and must stay readable.
  EXPECT_TRUE(store->EntryCount() > 0);
}

TEST(StoreEdgeTest, RecoverTwiceIsIdempotent) {
  StoreConfig config;
  config.dim = kDim;
  auto device = MakeDevice();
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  std::vector<EntryId> keys = {1, 2, 3};
  std::vector<float> w(keys.size() * kDim);
  ASSERT_TRUE(store->Pull(keys.data(), keys.size(), 1, w.data()).ok());
  store->FinishPullPhase(1);
  std::vector<float> g(keys.size() * kDim, 0.5f);
  ASSERT_TRUE(store->Push(keys.data(), keys.size(), g.data(), 1).ok());
  ASSERT_TRUE(store->RequestCheckpoint(1).ok());
  ASSERT_TRUE(store->DrainCheckpoints().ok());

  device->SimulateCrash();
  ASSERT_TRUE(store->RecoverFromCrash().ok());
  auto first = store->Peek(1).ValueOrDie();
  ASSERT_TRUE(store->RecoverFromCrash().ok());
  EXPECT_EQ(store->Peek(1).ValueOrDie(), first);
  EXPECT_EQ(store->EntryCount(), keys.size());
}

}  // namespace
}  // namespace oe

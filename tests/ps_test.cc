#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "common/random.h"
#include "ps/placement.h"
#include "ps/ps_cluster.h"

namespace oe::ps {
namespace {

using storage::StoreKind;

constexpr uint32_t kDim = 8;

ClusterOptions BaseOptions(StoreKind kind, uint32_t nodes) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.kind = kind;
  options.store.dim = kDim;
  options.store.optimizer.learning_rate = 0.5f;
  options.store.cache_bytes = 16 * 1024;
  options.crash_fidelity = pmem::CrashFidelity::kStrict;
  return options;
}

TEST(RouterTest, CoversAllNodesRoughlyEvenly) {
  Router router(4);
  std::vector<int> counts(4, 0);
  for (uint64_t key = 0; key < 4000; ++key) ++counts[router.NodeFor(key)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RouterTest, Deterministic) {
  Router a(8), b(8);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(a.NodeFor(key), b.NodeFor(key));
  }
}

class PsClusterTest : public ::testing::TestWithParam<StoreKind> {};

TEST_P(PsClusterTest, PullPushAcrossShards) {
  auto cluster = PsCluster::Create(BaseOptions(GetParam(), 4)).ValueOrDie();
  auto& client = cluster->client();

  std::vector<uint64_t> keys(32);
  std::iota(keys.begin(), keys.end(), 100);
  std::vector<float> weights(keys.size() * kDim);
  ASSERT_TRUE(client.Pull(keys.data(), keys.size(), 1, weights.data()).ok());
  ASSERT_TRUE(client.FinishPullPhase(1).ok());

  std::vector<float> grads(keys.size() * kDim, 1.0f);
  ASSERT_TRUE(client.Push(keys.data(), keys.size(), grads.data(), 1).ok());

  // Every key moved by -lr * grad regardless of which shard owns it.
  for (size_t i = 0; i < keys.size(); ++i) {
    auto after = client.Peek(keys[i]).ValueOrDie();
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_NEAR(after[d], weights[i * kDim + d] - 0.5f, 1e-5) << keys[i];
    }
  }
  EXPECT_EQ(client.TotalEntries().ValueOrDie(), keys.size());
}

TEST_P(PsClusterTest, ShardsPartitionKeys) {
  auto cluster = PsCluster::Create(BaseOptions(GetParam(), 4)).ValueOrDie();
  auto& client = cluster->client();
  std::vector<uint64_t> keys(64);
  std::iota(keys.begin(), keys.end(), 0);
  std::vector<float> weights(keys.size() * kDim);
  ASSERT_TRUE(client.Pull(keys.data(), keys.size(), 1, weights.data()).ok());

  size_t sum = 0;
  bool multiple_used = false;
  size_t nonzero = 0;
  for (uint32_t node = 0; node < 4; ++node) {
    const size_t count = cluster->store(node)->EntryCount();
    sum += count;
    if (count > 0) ++nonzero;
  }
  multiple_used = nonzero >= 2;
  EXPECT_EQ(sum, keys.size());
  EXPECT_TRUE(multiple_used);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PsClusterTest,
                         ::testing::Values(StoreKind::kDram,
                                           StoreKind::kPipelined,
                                           StoreKind::kOriCache,
                                           StoreKind::kPmemHash),
                         [](const auto& info) {
                           return std::string(
                               storage::StoreKindToString(info.param) ==
                                       "PMem-OE"
                                   ? "PmemOe"
                               : storage::StoreKindToString(info.param) ==
                                       "DRAM-PS"
                                   ? "DramPs"
                               : storage::StoreKindToString(info.param) ==
                                       "Ori-Cache"
                                   ? "OriCache"
                                   : "PmemHash");
                         });

TEST(PlacementTableTest, ReplicaAssignment) {
  Router router(4);
  PlacementTable table(router, {1, 2, 3}, 2);
  EXPECT_TRUE(table.is_hot(1));
  EXPECT_TRUE(table.is_hot(3));
  EXPECT_FALSE(table.is_hot(99));
  EXPECT_EQ(table.replicas(), 2u);
  for (uint64_t key : {1, 2, 3}) {
    // Replica 0 is the home node; further replicas are the next nodes in
    // ring order, all distinct.
    EXPECT_EQ(table.ReplicaNode(key, 0), router.NodeFor(key));
    EXPECT_EQ(table.ReplicaNode(key, 1),
              (router.NodeFor(key) + 1) % 4);
  }
}

TEST(PlacementTableTest, ReplicasClampedToClusterSize) {
  Router router(2);
  PlacementTable table(router, {7}, 5);
  EXPECT_EQ(table.replicas(), 2u);
  PlacementTable none(router, {7}, 0);
  EXPECT_EQ(none.replicas(), 1u);
}

TEST(PsClusterPlacementTest, HotKeyReplicasStayBitIdentical) {
  ClusterOptions options = BaseOptions(StoreKind::kPipelined, 3);
  options.hot_replicate_keys = 4;
  options.hot_replicas = 2;
  auto cluster = PsCluster::Create(options).ValueOrDie();
  auto& client = cluster->client();
  const PlacementTable* placement = cluster->placement();
  ASSERT_NE(placement, nullptr);

  Random rng(11);
  for (uint64_t batch = 1; batch <= 8; ++batch) {
    std::vector<uint64_t> keys = {0, 1, 2, 3};  // the replicated hot head
    for (int i = 0; i < 8; ++i) keys.push_back(10 + rng.Uniform(50));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::vector<float> weights(keys.size() * kDim);
    ASSERT_TRUE(
        client.Pull(keys.data(), keys.size(), batch, weights.data()).ok());
    ASSERT_TRUE(client.FinishPullPhase(batch).ok());
    std::vector<float> grads(keys.size() * kDim);
    for (auto& g : grads) g = rng.UniformFloat(-0.5f, 0.5f);
    ASSERT_TRUE(
        client.Push(keys.data(), keys.size(), grads.data(), batch).ok());
  }

  // Every replica of every hot key holds bit-identical weights: pushes fan
  // to all replicas exactly once (dedup window) and the server-side
  // optimizer and first-touch initializer are deterministic.
  for (uint64_t key = 0; key < 4; ++key) {
    const uint32_t home = placement->ReplicaNode(key, 0);
    auto want = cluster->store(home)->Peek(key);
    ASSERT_TRUE(want.ok()) << "hot key " << key << " missing on home node";
    for (uint32_t r = 1; r < placement->replicas(); ++r) {
      const uint32_t node = placement->ReplicaNode(key, r);
      ASSERT_NE(node, home);
      auto got = cluster->store(node)->Peek(key);
      ASSERT_TRUE(got.ok()) << "hot key " << key << " missing replica " << r;
      EXPECT_EQ(got.value(), want.value())
          << "replica " << r << " of key " << key << " diverged";
    }
  }

  // Non-hot keys live only on their home node.
  for (uint64_t key = 10; key < 60; ++key) {
    for (uint32_t node = 0; node < 3; ++node) {
      if (node == placement->router().NodeFor(key)) continue;
      EXPECT_FALSE(cluster->store(node)->Peek(key).ok())
          << "cold key " << key << " replicated to node " << node;
    }
  }

  // A second client shares the same placement and reads the same values.
  auto client_b = cluster->NewClient();
  auto seen = client_b->Peek(0).ValueOrDie();
  EXPECT_EQ(seen, cluster->store(placement->ReplicaNode(0, 0))
                      ->Peek(0)
                      .ValueOrDie());
}

TEST(PsClusterPlacementTest, ReplicationSpreadsHotLoad) {
  // One ultra-hot key dominates the pull stream. Without placement its home
  // node absorbs the full hot load; replicating it across all nodes must
  // bring the measured imbalance down.
  auto run = [](uint64_t hot_replicate_keys) {
    ClusterOptions options = BaseOptions(StoreKind::kPipelined, 4);
    options.hot_replicate_keys = hot_replicate_keys;
    options.hot_replicas = 4;
    auto cluster = PsCluster::Create(options).ValueOrDie();
    auto& client = cluster->client();
    for (uint64_t batch = 1; batch <= 50; ++batch) {
      std::vector<uint64_t> keys = {0, 100 + 3 * batch, 101 + 3 * batch,
                                    102 + 3 * batch};
      std::sort(keys.begin(), keys.end());
      std::vector<float> weights(keys.size() * kDim);
      EXPECT_TRUE(
          client.Pull(keys.data(), keys.size(), batch, weights.data()).ok());
      EXPECT_TRUE(client.FinishPullPhase(batch).ok());
    }
    cluster->RefreshLoadGauges();
    return cluster->LoadImbalance();
  };

  const double without = run(0);
  const double with_placement = run(1);
  EXPECT_GE(without, 1.0);
  EXPECT_GE(with_placement, 1.0);
  EXPECT_LT(with_placement, without);
}

TEST(PsClusterPlacementTest, NodePullKeysAccumulate) {
  ClusterOptions options = BaseOptions(StoreKind::kPipelined, 2);
  options.hot_replicate_keys = 2;
  options.hot_replicas = 2;
  auto cluster = PsCluster::Create(options).ValueOrDie();
  auto& client = cluster->client();
  std::vector<uint64_t> keys = {0, 1};
  std::vector<float> weights(keys.size() * kDim);
  for (uint64_t batch = 1; batch <= 6; ++batch) {
    ASSERT_TRUE(
        client.Pull(keys.data(), keys.size(), batch, weights.data()).ok());
    ASSERT_TRUE(client.FinishPullPhase(batch).ok());
  }
  cluster->RefreshLoadGauges();
  const auto per_node = cluster->NodePullKeys();
  ASSERT_EQ(per_node.size(), 2u);
  // Hot pulls round-robin the two replicas: both nodes saw traffic.
  EXPECT_GT(per_node[0], 0u);
  EXPECT_GT(per_node[1], 0u);
}

TEST(PsClusterCheckpointTest, DistributedCheckpointAndRecovery) {
  auto cluster =
      PsCluster::Create(BaseOptions(StoreKind::kPipelined, 3)).ValueOrDie();
  auto& client = cluster->client();
  Random rng(7);

  std::map<uint64_t, std::vector<float>> at_checkpoint;
  for (uint64_t batch = 1; batch <= 10; ++batch) {
    std::vector<uint64_t> keys;
    for (int i = 0; i < 24; ++i) keys.push_back(rng.Uniform(100));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::vector<float> weights(keys.size() * kDim);
    ASSERT_TRUE(
        client.Pull(keys.data(), keys.size(), batch, weights.data()).ok());
    ASSERT_TRUE(client.FinishPullPhase(batch).ok());
    std::vector<float> grads(keys.size() * kDim);
    for (auto& g : grads) g = rng.UniformFloat(-0.5f, 0.5f);
    ASSERT_TRUE(
        client.Push(keys.data(), keys.size(), grads.data(), batch).ok());

    if (batch == 6) {
      ASSERT_TRUE(client.RequestCheckpoint(batch).ok());
      ASSERT_TRUE(client.DrainCheckpoints().ok());
      EXPECT_EQ(client.ClusterCheckpoint().ValueOrDie(), 6u);
      const uint64_t total = client.TotalEntries().ValueOrDie();
      for (uint64_t key = 0; key < 100; ++key) {
        auto r = client.Peek(key);
        if (r.ok()) at_checkpoint[key] = std::move(r).ValueOrDie();
      }
      EXPECT_EQ(at_checkpoint.size(), total);
    }
  }

  cluster->SimulateCrashAll();
  ASSERT_TRUE(client.Recover().ok());
  EXPECT_EQ(client.ClusterCheckpoint().ValueOrDie(), 6u);
  EXPECT_EQ(client.TotalEntries().ValueOrDie(), at_checkpoint.size());
  for (const auto& [key, expected] : at_checkpoint) {
    auto got = client.Peek(key);
    ASSERT_TRUE(got.ok()) << key;
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_NEAR(got.value()[d], expected[d], 1e-5) << key;
    }
  }
}

TEST(PsClusterTest, NetStatsAccumulate) {
  auto cluster =
      PsCluster::Create(BaseOptions(StoreKind::kDram, 2)).ValueOrDie();
  auto& client = cluster->client();
  std::vector<uint64_t> keys = {1, 2, 3, 4};
  std::vector<float> weights(keys.size() * kDim);
  ASSERT_TRUE(client.Pull(keys.data(), keys.size(), 1, weights.data()).ok());
  EXPECT_GT(cluster->net_stats().requests.load(), 0u);
  EXPECT_GT(cluster->net_stats().bytes_received.load(),
            keys.size() * kDim * sizeof(float) - 1);
}

TEST(PsClusterTest, ZeroNodesRejected) {
  ClusterOptions options = BaseOptions(StoreKind::kDram, 0);
  EXPECT_FALSE(PsCluster::Create(options).ok());
}

TEST(PsClusterTest, MultipleClientsShareState) {
  auto cluster =
      PsCluster::Create(BaseOptions(StoreKind::kPipelined, 2)).ValueOrDie();
  auto client_a = cluster->NewClient();
  auto client_b = cluster->NewClient();
  uint64_t key = 42;
  std::vector<float> w(kDim);
  ASSERT_TRUE(client_a->Pull(&key, 1, 1, w.data()).ok());
  ASSERT_TRUE(client_a->FinishPullPhase(1).ok());
  std::vector<float> g(kDim, 1.0f);
  ASSERT_TRUE(client_a->Push(&key, 1, g.data(), 1).ok());
  auto seen_by_b = client_b->Peek(key).ValueOrDie();
  for (uint32_t d = 0; d < kDim; ++d) {
    EXPECT_NEAR(seen_by_b[d], w[d] - 0.5f, 1e-5);
  }
}

}  // namespace
}  // namespace oe::ps

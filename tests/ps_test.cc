#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "common/random.h"
#include "ps/ps_cluster.h"

namespace oe::ps {
namespace {

using storage::StoreKind;

constexpr uint32_t kDim = 8;

ClusterOptions BaseOptions(StoreKind kind, uint32_t nodes) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.kind = kind;
  options.store.dim = kDim;
  options.store.optimizer.learning_rate = 0.5f;
  options.store.cache_bytes = 16 * 1024;
  options.crash_fidelity = pmem::CrashFidelity::kStrict;
  return options;
}

TEST(RouterTest, CoversAllNodesRoughlyEvenly) {
  Router router(4);
  std::vector<int> counts(4, 0);
  for (uint64_t key = 0; key < 4000; ++key) ++counts[router.NodeFor(key)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RouterTest, Deterministic) {
  Router a(8), b(8);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(a.NodeFor(key), b.NodeFor(key));
  }
}

class PsClusterTest : public ::testing::TestWithParam<StoreKind> {};

TEST_P(PsClusterTest, PullPushAcrossShards) {
  auto cluster = PsCluster::Create(BaseOptions(GetParam(), 4)).ValueOrDie();
  auto& client = cluster->client();

  std::vector<uint64_t> keys(32);
  std::iota(keys.begin(), keys.end(), 100);
  std::vector<float> weights(keys.size() * kDim);
  ASSERT_TRUE(client.Pull(keys.data(), keys.size(), 1, weights.data()).ok());
  ASSERT_TRUE(client.FinishPullPhase(1).ok());

  std::vector<float> grads(keys.size() * kDim, 1.0f);
  ASSERT_TRUE(client.Push(keys.data(), keys.size(), grads.data(), 1).ok());

  // Every key moved by -lr * grad regardless of which shard owns it.
  for (size_t i = 0; i < keys.size(); ++i) {
    auto after = client.Peek(keys[i]).ValueOrDie();
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_NEAR(after[d], weights[i * kDim + d] - 0.5f, 1e-5) << keys[i];
    }
  }
  EXPECT_EQ(client.TotalEntries().ValueOrDie(), keys.size());
}

TEST_P(PsClusterTest, ShardsPartitionKeys) {
  auto cluster = PsCluster::Create(BaseOptions(GetParam(), 4)).ValueOrDie();
  auto& client = cluster->client();
  std::vector<uint64_t> keys(64);
  std::iota(keys.begin(), keys.end(), 0);
  std::vector<float> weights(keys.size() * kDim);
  ASSERT_TRUE(client.Pull(keys.data(), keys.size(), 1, weights.data()).ok());

  size_t sum = 0;
  bool multiple_used = false;
  size_t nonzero = 0;
  for (uint32_t node = 0; node < 4; ++node) {
    const size_t count = cluster->store(node)->EntryCount();
    sum += count;
    if (count > 0) ++nonzero;
  }
  multiple_used = nonzero >= 2;
  EXPECT_EQ(sum, keys.size());
  EXPECT_TRUE(multiple_used);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PsClusterTest,
                         ::testing::Values(StoreKind::kDram,
                                           StoreKind::kPipelined,
                                           StoreKind::kOriCache,
                                           StoreKind::kPmemHash),
                         [](const auto& info) {
                           return std::string(
                               storage::StoreKindToString(info.param) ==
                                       "PMem-OE"
                                   ? "PmemOe"
                               : storage::StoreKindToString(info.param) ==
                                       "DRAM-PS"
                                   ? "DramPs"
                               : storage::StoreKindToString(info.param) ==
                                       "Ori-Cache"
                                   ? "OriCache"
                                   : "PmemHash");
                         });

TEST(PsClusterCheckpointTest, DistributedCheckpointAndRecovery) {
  auto cluster =
      PsCluster::Create(BaseOptions(StoreKind::kPipelined, 3)).ValueOrDie();
  auto& client = cluster->client();
  Random rng(7);

  std::map<uint64_t, std::vector<float>> at_checkpoint;
  for (uint64_t batch = 1; batch <= 10; ++batch) {
    std::vector<uint64_t> keys;
    for (int i = 0; i < 24; ++i) keys.push_back(rng.Uniform(100));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::vector<float> weights(keys.size() * kDim);
    ASSERT_TRUE(
        client.Pull(keys.data(), keys.size(), batch, weights.data()).ok());
    ASSERT_TRUE(client.FinishPullPhase(batch).ok());
    std::vector<float> grads(keys.size() * kDim);
    for (auto& g : grads) g = rng.UniformFloat(-0.5f, 0.5f);
    ASSERT_TRUE(
        client.Push(keys.data(), keys.size(), grads.data(), batch).ok());

    if (batch == 6) {
      ASSERT_TRUE(client.RequestCheckpoint(batch).ok());
      ASSERT_TRUE(client.DrainCheckpoints().ok());
      EXPECT_EQ(client.ClusterCheckpoint().ValueOrDie(), 6u);
      const uint64_t total = client.TotalEntries().ValueOrDie();
      for (uint64_t key = 0; key < 100; ++key) {
        auto r = client.Peek(key);
        if (r.ok()) at_checkpoint[key] = std::move(r).ValueOrDie();
      }
      EXPECT_EQ(at_checkpoint.size(), total);
    }
  }

  cluster->SimulateCrashAll();
  ASSERT_TRUE(client.Recover().ok());
  EXPECT_EQ(client.ClusterCheckpoint().ValueOrDie(), 6u);
  EXPECT_EQ(client.TotalEntries().ValueOrDie(), at_checkpoint.size());
  for (const auto& [key, expected] : at_checkpoint) {
    auto got = client.Peek(key);
    ASSERT_TRUE(got.ok()) << key;
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_NEAR(got.value()[d], expected[d], 1e-5) << key;
    }
  }
}

TEST(PsClusterTest, NetStatsAccumulate) {
  auto cluster =
      PsCluster::Create(BaseOptions(StoreKind::kDram, 2)).ValueOrDie();
  auto& client = cluster->client();
  std::vector<uint64_t> keys = {1, 2, 3, 4};
  std::vector<float> weights(keys.size() * kDim);
  ASSERT_TRUE(client.Pull(keys.data(), keys.size(), 1, weights.data()).ok());
  EXPECT_GT(cluster->net_stats().requests.load(), 0u);
  EXPECT_GT(cluster->net_stats().bytes_received.load(),
            keys.size() * kDim * sizeof(float) - 1);
}

TEST(PsClusterTest, ZeroNodesRejected) {
  ClusterOptions options = BaseOptions(StoreKind::kDram, 0);
  EXPECT_FALSE(PsCluster::Create(options).ok());
}

TEST(PsClusterTest, MultipleClientsShareState) {
  auto cluster =
      PsCluster::Create(BaseOptions(StoreKind::kPipelined, 2)).ValueOrDie();
  auto client_a = cluster->NewClient();
  auto client_b = cluster->NewClient();
  uint64_t key = 42;
  std::vector<float> w(kDim);
  ASSERT_TRUE(client_a->Pull(&key, 1, 1, w.data()).ok());
  ASSERT_TRUE(client_a->FinishPullPhase(1).ok());
  std::vector<float> g(kDim, 1.0f);
  ASSERT_TRUE(client_a->Push(&key, 1, g.data(), 1).ok());
  auto seen_by_b = client_b->Peek(key).ValueOrDie();
  for (uint32_t d = 0; d < kDim; ++d) {
    EXPECT_NEAR(seen_by_b[d], w[d] - 0.5f, 1e-5);
  }
}

}  // namespace
}  // namespace oe::ps

// End-to-end PS node crash/restart recovery: a FaultyTransport kill
// schedule takes a node down mid-epoch, SyncTrainer::TrainBatchesWithRecovery
// restarts it over the surviving device image, rolls the cluster back to the
// last durable checkpoint, and replays — and with one worker, SGD, durable
// checkpoints and deterministic data the recovered run is BIT-IDENTICAL to a
// fault-free golden run (sparse shards and dense model alike). This is the
// paper's recovery story (Section VI) driven through the network layer.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/faulty_transport.h"
#include "storage/optimizer.h"
#include "train/sync_trainer.h"

namespace oe::train {
namespace {

struct RecoverySetup {
  std::unique_ptr<ps::PsCluster> cluster;
  std::unique_ptr<SyncTrainer> trainer;
};

// One worker + SGD + durable checkpoints + deterministic data: the
// preconditions under which replayed training is bit-identical (AdaGrad
// would also be deterministic, but SGD keeps the optimizer state out of
// the equation; multiple workers would interleave pushes
// nondeterministically).
RecoverySetup MakeRecoverySetup(bool inject_faults) {
  RecoverySetup setup;
  ps::ClusterOptions options;
  options.num_nodes = 2;
  options.kind = storage::StoreKind::kPipelined;
  options.store.dim = 8;
  options.store.optimizer.kind = storage::OptimizerKind::kSgd;
  options.store.optimizer.learning_rate = 0.05f;
  options.store.cache_bytes = 256 * 1024;
  options.pmem_bytes_per_node = 64ULL << 20;
  options.crash_fidelity = pmem::CrashFidelity::kStrict;
  if (inject_faults) {
    options.inject_net_faults = true;
    options.net_fault_seed = 11;
    options.rpc_options.max_retries = 2;
    options.rpc_options.backoff_initial_ms = 0;
  }
  setup.cluster = ps::PsCluster::Create(options).ValueOrDie();

  workload::CriteoSynthConfig data_config;
  data_config.base_cardinality = 200;
  data_config.categorical_fields = 8;
  data_config.dense_fields = 4;

  TrainerConfig trainer_config;
  trainer_config.workers = 1;
  trainer_config.batch_size = 32;
  trainer_config.checkpoint_interval = 4;
  trainer_config.durable_checkpoints = true;
  trainer_config.deterministic_data = true;
  trainer_config.model.num_fields = 8;
  trainer_config.model.dense_dim = 4;
  trainer_config.model.embed_dim = 8;
  trainer_config.model.hidden = {16};
  trainer_config.model.dense_learning_rate = 0.02f;
  setup.trainer = std::make_unique<SyncTrainer>(setup.cluster.get(),
                                                data_config, trainer_config);
  return setup;
}

// Final-state fingerprint: every sparse key's weights (by symmetric Peek —
// both runs must agree on which keys exist) plus the dense parameters.
void ExpectSameFinalModel(RecoverySetup& golden, RecoverySetup& subject) {
  ps::PsClient& gc = golden.cluster->client();
  ps::PsClient& sc = subject.cluster->client();
  ASSERT_EQ(gc.TotalEntries().ValueOrDie(), sc.TotalEntries().ValueOrDie());

  uint64_t compared = 0;
  for (storage::EntryId key = 0; key < 2200; ++key) {
    auto g = gc.Peek(key);
    auto s = sc.Peek(key);
    ASSERT_EQ(g.ok(), s.ok()) << "key " << key;
    if (!g.ok()) continue;
    EXPECT_EQ(std::move(g).ValueOrDie(), std::move(s).ValueOrDie())
        << "key " << key;
    ++compared;
  }
  EXPECT_GT(compared, 100u);  // the scan actually covered trained keys

  EXPECT_EQ(golden.trainer->model().SaveDense(),
            subject.trainer->model().SaveDense());
}

TEST(RecoveryNetTest, NodeCrashMidEpochRecoversBitIdentical) {
  constexpr uint64_t kBatches = 12;

  auto golden = MakeRecoverySetup(/*inject_faults=*/false);
  ASSERT_TRUE(golden.trainer->TrainBatches(kBatches).ok());

  auto subject = MakeRecoverySetup(/*inject_faults=*/true);
  // Kill node 1 on its ~20th RPC — mid-epoch, past the batch-4 durable
  // checkpoint, before the batch-8 one.
  subject.cluster->faulty_transport()->SetKillCallback([&](net::NodeId node) {
    ASSERT_TRUE(subject.cluster->KillNode(node).ok());
  });
  net::NetFaultSpec spec;
  spec.kill_at = 20;
  subject.cluster->faulty_transport()->SetFaultSpec(1, spec);

  Status status = subject.trainer->TrainBatchesWithRecovery(kBatches);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(subject.trainer->next_batch(), kBatches + 1);
  // The kill really happened and was survived (node is back up).
  EXPECT_FALSE(subject.cluster->node_down(1));
  EXPECT_TRUE(subject.cluster->DownNodes().empty());

  ExpectSameFinalModel(golden, subject);
}

TEST(RecoveryNetTest, RecoveryUnderLossyNetworkStillBitIdentical) {
  // Kill + restart layered under a lossy, duplicating schedule: retries
  // carry the training through, sequence-id dedup keeps every replayed
  // gradient exactly-once, and the result still matches the golden run.
  constexpr uint64_t kBatches = 12;

  auto golden = MakeRecoverySetup(/*inject_faults=*/false);
  ASSERT_TRUE(golden.trainer->TrainBatches(kBatches).ok());

  auto subject = MakeRecoverySetup(/*inject_faults=*/true);
  subject.cluster->rpc_transport()->set_rpc_options([] {
    net::RpcOptions options;
    options.max_retries = 50;
    options.backoff_initial_ms = 0;
    return options;
  }());
  subject.cluster->faulty_transport()->SetKillCallback([&](net::NodeId node) {
    ASSERT_TRUE(subject.cluster->KillNode(node).ok());
  });
  for (uint32_t node = 0; node < 2; ++node) {
    net::NetFaultSpec spec;
    spec.drop_rate = 0.05;
    spec.duplicate_rate = 0.1;
    spec.fail_response_rate = 0.05;
    if (node == 1) spec.kill_at = 25;
    subject.cluster->faulty_transport()->SetFaultSpec(node, spec);
  }

  Status status = subject.trainer->TrainBatchesWithRecovery(kBatches);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(subject.trainer->next_batch(), kBatches + 1);

  ExpectSameFinalModel(golden, subject);
  EXPECT_GT(subject.cluster->net_stats().retries.load(), 0u);
}

TEST(RecoveryNetTest, RepeatedCrashesExhaustMaxRecoveries) {
  auto subject = MakeRecoverySetup(/*inject_faults=*/true);
  // Re-arm the kill after every crash: SetFaultSpec resets the node's call
  // ordinal, so each restarted incarnation dies on ITS 5th RPC and recovery
  // can never make progress past the kill.
  net::NetFaultSpec spec;
  spec.kill_at = 5;
  subject.cluster->faulty_transport()->SetFaultSpec(1, spec);
  subject.cluster->faulty_transport()->SetKillCallback([&](net::NodeId node) {
    ASSERT_TRUE(subject.cluster->KillNode(node).ok());
    net::NetFaultSpec again;
    again.kill_at = 5;
    subject.cluster->faulty_transport()->SetFaultSpec(node, again);
  });

  Status status = subject.trainer->TrainBatchesWithRecovery(12);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(net::IsRetryable(status.code())) << status.ToString();
}

}  // namespace
}  // namespace oe::train

// Process-restart and concurrency tests for the pipelined store: the
// file-backed PMem image survives a store teardown + reopen (the paper's
// deployment restarts), and the store is safe under concurrent workers.

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storage/pipelined_store.h"

namespace oe::storage {
namespace {

using pmem::CrashFidelity;
using pmem::PmemDevice;
using pmem::PmemDeviceOptions;

constexpr uint32_t kDim = 8;

StoreConfig SmallConfig() {
  StoreConfig config;
  config.dim = kDim;
  config.optimizer.learning_rate = 0.5f;
  config.cache_bytes = 8 * 1024;
  return config;
}

TEST(PipelinedRestartTest, OpenRejectsUnformattedDevice) {
  PmemDeviceOptions options;
  options.size_bytes = 8 << 20;
  auto device = PmemDevice::Create(options).ValueOrDie();
  EXPECT_FALSE(PipelinedStore::Open(SmallConfig(), device.get()).ok());
}

TEST(PipelinedRestartTest, FileBackedRestartRestoresCheckpoint) {
  const std::string path = ::testing::TempDir() + "/oe_restart_test.img";
  std::filesystem::remove(path);
  std::vector<EntryId> keys = {1, 2, 3, 4};
  std::vector<float> expected;

  {
    PmemDeviceOptions device_options;
    device_options.size_bytes = 16 << 20;
    device_options.backing_file = path;
    device_options.crash_fidelity = CrashFidelity::kNone;
    auto device = PmemDevice::Create(device_options).ValueOrDie();
    auto store = PipelinedStore::Create(SmallConfig(), device.get())
                     .ValueOrDie();
    std::vector<float> w(keys.size() * kDim);
    ASSERT_TRUE(store->Pull(keys.data(), keys.size(), 1, w.data()).ok());
    std::vector<float> g(keys.size() * kDim, 0.25f);
    ASSERT_TRUE(store->Push(keys.data(), keys.size(), g.data(), 1).ok());
    ASSERT_TRUE(store->RequestCheckpoint(1).ok());
    ASSERT_TRUE(store->DrainCheckpoints().ok());
    expected = store->Peek(2).ValueOrDie();
    // Store and device destroyed: "process exits". msync flushes the file.
  }

  {
    PmemDeviceOptions device_options;
    device_options.size_bytes = 16 << 20;
    device_options.backing_file = path;
    device_options.crash_fidelity = CrashFidelity::kNone;
    auto device = PmemDevice::Create(device_options).ValueOrDie();
    auto store =
        PipelinedStore::Open(SmallConfig(), device.get()).ValueOrDie();
    EXPECT_EQ(store->PublishedCheckpoint(), 1u);
    EXPECT_EQ(store->EntryCount(), keys.size());
    EXPECT_EQ(store->Peek(2).ValueOrDie(), expected);

    // Training continues after the restart.
    std::vector<float> w(keys.size() * kDim);
    ASSERT_TRUE(store->Pull(keys.data(), keys.size(), 2, w.data()).ok());
    std::vector<float> g(keys.size() * kDim, 0.1f);
    ASSERT_TRUE(store->Push(keys.data(), keys.size(), g.data(), 2).ok());
  }
  std::filesystem::remove(path);
}

TEST(PipelinedConcurrencyTest, ParallelWorkersPullAndPush) {
  PmemDeviceOptions device_options;
  device_options.size_bytes = 64 << 20;
  device_options.crash_fidelity = CrashFidelity::kNone;
  auto device = PmemDevice::Create(device_options).ValueOrDie();
  StoreConfig config = SmallConfig();
  config.cache_bytes = 64 * 1024;
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();

  constexpr int kWorkers = 4;
  constexpr uint64_t kBatches = 20;
  std::atomic<int> failures{0};

  for (uint64_t batch = 1; batch <= kBatches; ++batch) {
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w, batch] {
        Random rng(batch * 131 + static_cast<uint64_t>(w));
        std::vector<EntryId> keys;
        for (int i = 0; i < 64; ++i) keys.push_back(rng.Uniform(2000));
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        std::vector<float> weights(keys.size() * kDim);
        if (!store->Pull(keys.data(), keys.size(), batch, weights.data())
                 .ok()) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : workers) t.join();
    store->FinishPullPhase(batch);

    std::vector<std::thread> pushers;
    for (int w = 0; w < kWorkers; ++w) {
      pushers.emplace_back([&, w, batch] {
        Random rng(batch * 131 + static_cast<uint64_t>(w));
        std::vector<EntryId> keys;
        for (int i = 0; i < 64; ++i) keys.push_back(rng.Uniform(2000));
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        std::vector<float> grads(keys.size() * kDim, 0.01f);
        if (!store->Push(keys.data(), keys.size(), grads.data(), batch)
                 .ok()) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : pushers) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(store->EntryCount(), 0u);
  EXPECT_LE(store->CachedEntries(), store->CacheCapacityEntries());

  // Every key remains readable and finite after the storm.
  for (EntryId key = 0; key < 100; ++key) {
    auto r = store->Peek(key);
    if (r.ok()) {
      for (float v : r.value()) EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(PipelinedConcurrencyTest, CheckpointsDuringConcurrentTraining) {
  PmemDeviceOptions device_options;
  device_options.size_bytes = 64 << 20;
  device_options.crash_fidelity = CrashFidelity::kStrict;
  auto device = PmemDevice::Create(device_options).ValueOrDie();
  auto store = PipelinedStore::Create(SmallConfig(), device.get())
                   .ValueOrDie();

  std::vector<EntryId> keys(128);
  std::iota(keys.begin(), keys.end(), 0);
  for (uint64_t batch = 1; batch <= 30; ++batch) {
    std::vector<float> w(keys.size() * kDim);
    ASSERT_TRUE(store->Pull(keys.data(), keys.size(), batch, w.data()).ok());
    store->FinishPullPhase(batch);
    std::vector<float> g(keys.size() * kDim, 0.05f);
    ASSERT_TRUE(store->Push(keys.data(), keys.size(), g.data(), batch).ok());
    if (batch % 5 == 0) {
      ASSERT_TRUE(store->RequestCheckpoint(batch).ok());
    }
  }
  ASSERT_TRUE(store->DrainCheckpoints().ok());
  EXPECT_EQ(store->PublishedCheckpoint(), 30u);

  device->SimulateCrash();
  ASSERT_TRUE(store->RecoverFromCrash().ok());
  EXPECT_EQ(store->EntryCount(), keys.size());
}

}  // namespace
}  // namespace oe::storage

// Process-restart, crash-recovery and concurrency tests for the embedding
// stores: the file-backed PMem image survives a store teardown + reopen
// (the paper's deployment restarts), the store is safe under concurrent
// workers, and the two baseline stores recover exactly as the paper says
// they do — Ori-Cache batch-consistently via its checkpoint log, PMem-Hash
// to whatever torn mix of batches was in PMem (Observation 2).

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <thread>
#include <vector>

#include "ckpt/checkpoint_log.h"
#include "common/random.h"
#include "storage/ori_cache_store.h"
#include "storage/pipelined_store.h"
#include "storage/pmem_hash_store.h"
#include "test_util.h"

namespace oe::storage {
namespace {

using oe::test::MakeDevice;
using oe::test::SmallConfig;
using oe::test::kSmallDim;
using pmem::CrashFidelity;
using pmem::PmemDevice;

constexpr uint32_t kDim = kSmallDim;

// Pull/FinishPullPhase/Push one batch with a constant gradient.
void TrainBatch(EmbeddingStore* store, uint64_t batch,
                const std::vector<EntryId>& keys, float g) {
  std::vector<float> w(keys.size() * kDim);
  ASSERT_TRUE(store->Pull(keys.data(), keys.size(), batch, w.data()).ok());
  store->FinishPullPhase(batch);
  std::vector<float> grads(keys.size() * kDim, g);
  ASSERT_TRUE(store->Push(keys.data(), keys.size(), grads.data(), batch).ok());
}

TEST(PipelinedRestartTest, OpenRejectsUnformattedDevice) {
  auto device = MakeDevice({.size_bytes = 8 << 20});
  EXPECT_FALSE(PipelinedStore::Open(SmallConfig(), device.get()).ok());
}

TEST(PipelinedRestartTest, FileBackedRestartRestoresCheckpoint) {
  const std::string path = ::testing::TempDir() + "/oe_restart_test.img";
  std::filesystem::remove(path);
  std::vector<EntryId> keys = {1, 2, 3, 4};
  std::vector<float> expected;

  {
    auto device = MakeDevice({.fidelity = CrashFidelity::kNone,
                              .backing_file = path});
    auto store = PipelinedStore::Create(SmallConfig(), device.get())
                     .ValueOrDie();
    TrainBatch(store.get(), 1, keys, 0.25f);
    ASSERT_TRUE(store->RequestCheckpoint(1).ok());
    ASSERT_TRUE(store->DrainCheckpoints().ok());
    expected = store->Peek(2).ValueOrDie();
    // Store and device destroyed: "process exits". msync flushes the file.
  }

  {
    auto device = MakeDevice({.fidelity = CrashFidelity::kNone,
                              .backing_file = path});
    auto store =
        PipelinedStore::Open(SmallConfig(), device.get()).ValueOrDie();
    EXPECT_EQ(store->PublishedCheckpoint(), 1u);
    EXPECT_EQ(store->EntryCount(), keys.size());
    EXPECT_EQ(store->Peek(2).ValueOrDie(), expected);

    // Training continues after the restart.
    TrainBatch(store.get(), 2, keys, 0.1f);
  }
  std::filesystem::remove(path);
}

TEST(PipelinedConcurrencyTest, ParallelWorkersPullAndPush) {
  auto device = MakeDevice(
      {.size_bytes = 64 << 20, .fidelity = CrashFidelity::kNone});
  StoreConfig config = SmallConfig();
  config.cache_bytes = 64 * 1024;
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();

  constexpr int kWorkers = 4;
  constexpr uint64_t kBatches = 20;
  std::atomic<int> failures{0};

  for (uint64_t batch = 1; batch <= kBatches; ++batch) {
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w, batch] {
        Random rng(batch * 131 + static_cast<uint64_t>(w));
        std::vector<EntryId> keys;
        for (int i = 0; i < 64; ++i) keys.push_back(rng.Uniform(2000));
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        std::vector<float> weights(keys.size() * kDim);
        if (!store->Pull(keys.data(), keys.size(), batch, weights.data())
                 .ok()) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : workers) t.join();
    store->FinishPullPhase(batch);

    std::vector<std::thread> pushers;
    for (int w = 0; w < kWorkers; ++w) {
      pushers.emplace_back([&, w, batch] {
        Random rng(batch * 131 + static_cast<uint64_t>(w));
        std::vector<EntryId> keys;
        for (int i = 0; i < 64; ++i) keys.push_back(rng.Uniform(2000));
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        std::vector<float> grads(keys.size() * kDim, 0.01f);
        if (!store->Push(keys.data(), keys.size(), grads.data(), batch)
                 .ok()) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : pushers) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(store->EntryCount(), 0u);
  EXPECT_LE(store->CachedEntries(), store->CacheCapacityEntries());

  // Every key remains readable and finite after the storm.
  for (EntryId key = 0; key < 100; ++key) {
    auto r = store->Peek(key);
    if (r.ok()) {
      for (float v : r.value()) EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(PipelinedConcurrencyTest, CheckpointsDuringConcurrentTraining) {
  auto device = MakeDevice({.size_bytes = 64 << 20});
  auto store = PipelinedStore::Create(SmallConfig(), device.get())
                   .ValueOrDie();

  std::vector<EntryId> keys(128);
  std::iota(keys.begin(), keys.end(), 0);
  for (uint64_t batch = 1; batch <= 30; ++batch) {
    TrainBatch(store.get(), batch, keys, 0.05f);
    if (batch % 5 == 0) {
      ASSERT_TRUE(store->RequestCheckpoint(batch).ok());
    }
  }
  ASSERT_TRUE(store->DrainCheckpoints().ok());
  EXPECT_EQ(store->PublishedCheckpoint(), 30u);

  device->SimulateCrash();
  ASSERT_TRUE(store->RecoverFromCrash().ok());
  EXPECT_EQ(store->EntryCount(), keys.size());
}

// Ori-Cache recovers batch-consistently, but only to its incremental
// checkpoint log's last batch: everything trained after the checkpoint is
// rolled back, including in-place PMem records the cache wrote back since.
TEST(OriCacheRecoveryTest, RecoversToLastLoggedCheckpoint) {
  auto store_device = MakeDevice();
  auto log_device = MakeDevice();
  StoreConfig config = SmallConfig();
  EntryLayout layout(config.dim, config.optimizer.Slots());
  auto log =
      ckpt::CheckpointLog::Create(log_device.get(), layout).ValueOrDie();
  auto store =
      OriCacheStore::Create(config, store_device.get(), log.get())
          .ValueOrDie();

  std::vector<EntryId> keys = {1, 2, 3, 4, 5, 6, 7, 8};
  TrainBatch(store.get(), 1, keys, 0.25f);
  TrainBatch(store.get(), 2, keys, 0.25f);
  ASSERT_TRUE(store->RequestCheckpoint(2).ok());
  EXPECT_EQ(store->PublishedCheckpoint(), 2u);
  std::map<EntryId, std::vector<float>> at_checkpoint;
  for (EntryId key : keys) {
    at_checkpoint[key] = store->Peek(key).ValueOrDie();
  }

  // Batch 3 dirties the cache (and possibly PMem, via write-backs) past
  // the checkpoint, then the machine dies.
  TrainBatch(store.get(), 3, keys, 0.5f);
  store_device->SimulateCrash();

  ASSERT_TRUE(store->RecoverFromCrash().ok());
  EXPECT_EQ(store->PublishedCheckpoint(), 2u);
  for (EntryId key : keys) {
    EXPECT_EQ(store->Peek(key).ValueOrDie(), at_checkpoint[key])
        << "key " << key << " not rolled back to checkpoint 2";
  }
}

// PMem-Hash intentionally does NOT recover batch-consistently (the paper's
// Observation 2: existing PMem structures lack batch atomicity). Updates
// are persisted in place as they happen, so a crash mid-batch recovers a
// torn mix: some keys at batch 2, the rest still at batch 1, and no
// checkpoint id is ever published. This test documents that contract.
TEST(PmemHashRecoveryTest, RecoversTornStateAcrossBatchBoundary) {
  auto device = MakeDevice();
  auto store =
      PmemHashStore::Create(SmallConfig(), device.get()).ValueOrDie();

  std::vector<EntryId> keys = {1, 2, 3, 4, 5, 6, 7, 8};
  TrainBatch(store.get(), 1, keys, 0.25f);
  // Batch-aware checkpointing is unsupported by design.
  EXPECT_FALSE(store->RequestCheckpoint(1).ok());
  EXPECT_EQ(store->PublishedCheckpoint(), 0u);

  // Batch 2 reaches only half the keys before the crash.
  std::vector<EntryId> half(keys.begin(), keys.begin() + 4);
  TrainBatch(store.get(), 2, half, 0.5f);
  std::map<EntryId, std::vector<float>> pre_crash;
  for (EntryId key : keys) pre_crash[key] = store->Peek(key).ValueOrDie();

  device->SimulateCrash();
  ASSERT_TRUE(store->RecoverFromCrash().ok());
  EXPECT_EQ(store->PublishedCheckpoint(), 0u);

  // Every in-place update survives — exactly the pre-crash torn state, not
  // any batch boundary: half the keys carry batch-2 values.
  for (EntryId key : keys) {
    EXPECT_EQ(store->Peek(key).ValueOrDie(), pre_crash[key]) << "key " << key;
  }
  EXPECT_NE(pre_crash[1], pre_crash[5]);  // the tear is observable
}

}  // namespace
}  // namespace oe::storage

// Online serving tier: snapshot-read consistency of PipelinedStore::MultiGet
// against concurrent training pushes, the ServingCache, and the cluster-level
// MultiGet fan-out.
//
// The property tests use an analytically-solvable model: zero initialization
// plus SGD (lr 0.5) with gradient 1.0 pushed to EVERY key on EVERY batch
// makes each weight exactly -0.5 * batch after batch `batch` (all values
// are exact in fp32 for small batch counts). A snapshot read pinned to
// checkpoint `cp` must therefore return -0.5 * cp bit-exactly in every
// dimension of every key — any torn read, any mix of two checkpoint
// versions, and any stale-cache serve breaks the equality.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ps/ps_cluster.h"
#include "ps/serving_cache.h"
#include "storage/pipelined_store.h"
#include "test_util.h"

namespace oe {
namespace {

using ps::ClusterOptions;
using ps::PsCluster;
using ps::ServingCache;
using storage::EntryId;
using storage::PipelinedStore;
using storage::StoreConfig;
using test::MakeDevice;
using test::SmallConfig;
using test::TestSeed;

constexpr uint32_t kDim = test::kSmallDim;

/// SmallConfig with the deterministic serving model: zeros init, so value
/// after batch b is exactly -0.5 * b (see file comment).
StoreConfig ServingConfig() {
  StoreConfig config = SmallConfig();
  config.initializer.kind = storage::InitializerKind::kZeros;
  return config;
}

/// Runs one training step: pull/finish/push gradient 1.0 on all `keys`.
void TrainStep(storage::EmbeddingStore* store, const std::vector<EntryId>& keys,
               uint64_t batch) {
  std::vector<float> weights(keys.size() * kDim);
  ASSERT_TRUE(
      store->Pull(keys.data(), keys.size(), batch, weights.data()).ok());
  store->FinishPullPhase(batch);
  std::vector<float> grads(keys.size() * kDim, 1.0f);
  ASSERT_TRUE(store->Push(keys.data(), keys.size(), grads.data(), batch).ok());
}

TEST(ServingTest, MultiGetServesPublishedCheckpointExactly) {
  auto device = MakeDevice();
  auto store = PipelinedStore::Create(ServingConfig(), device.get())
                   .ValueOrDie();
  const std::vector<EntryId> keys = {1, 2, 3, 4, 5, 6, 7, 8};
  TrainStep(store.get(), keys, 1);
  ASSERT_TRUE(store->RequestCheckpoint(1).ok());
  ASSERT_TRUE(store->DrainCheckpoints().ok());

  // Advance training past the checkpoint: served values must not move.
  TrainStep(store.get(), keys, 2);

  std::vector<float> out(keys.size() * kDim);
  std::vector<uint8_t> found(keys.size());
  uint64_t cp = 0;
  ASSERT_TRUE(store
                  ->MultiGet(keys.data(), keys.size(), out.data(),
                             found.data(), &cp)
                  .ok());
  EXPECT_EQ(cp, 1u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(found[i], 1) << "key " << keys[i];
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_EQ(out[i * kDim + d], -0.5f) << "key " << keys[i];
    }
  }
}

TEST(ServingTest, MultiGetBeforeFirstCheckpointFindsNothing) {
  auto device = MakeDevice();
  auto store = PipelinedStore::Create(ServingConfig(), device.get())
                   .ValueOrDie();
  const std::vector<EntryId> keys = {1, 2, 3};
  TrainStep(store.get(), keys, 1);  // live data, but nothing published

  std::vector<float> out(keys.size() * kDim, 42.0f);
  std::vector<uint8_t> found(keys.size(), 1);
  uint64_t cp = 99;
  ASSERT_TRUE(store
                  ->MultiGet(keys.data(), keys.size(), out.data(),
                             found.data(), &cp)
                  .ok());
  EXPECT_EQ(cp, 0u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(found[i], 0);
    for (uint32_t d = 0; d < kDim; ++d) EXPECT_EQ(out[i * kDim + d], 0.0f);
  }
}

TEST(ServingTest, MultiGetZeroFillsMissingKeys) {
  auto device = MakeDevice();
  auto store = PipelinedStore::Create(ServingConfig(), device.get())
                   .ValueOrDie();
  const std::vector<EntryId> trained = {1, 2};
  TrainStep(store.get(), trained, 1);
  ASSERT_TRUE(store->RequestCheckpoint(1).ok());
  ASSERT_TRUE(store->DrainCheckpoints().ok());

  const std::vector<EntryId> keys = {1, 777, 2};  // 777 never existed
  std::vector<float> out(keys.size() * kDim, 42.0f);
  std::vector<uint8_t> found(keys.size(), 1);
  uint64_t cp = 0;
  ASSERT_TRUE(store
                  ->MultiGet(keys.data(), keys.size(), out.data(),
                             found.data(), &cp)
                  .ok());
  EXPECT_EQ(found[0], 1);
  EXPECT_EQ(found[1], 0);
  EXPECT_EQ(found[2], 1);
  for (uint32_t d = 0; d < kDim; ++d) {
    EXPECT_EQ(out[0 * kDim + d], -0.5f);
    EXPECT_EQ(out[1 * kDim + d], 0.0f);
    EXPECT_EQ(out[2 * kDim + d], -0.5f);
  }
}

TEST(ServingTest, SnapshotIndexDrainsWhenUnpinned) {
  auto device = MakeDevice();
  StoreConfig config = ServingConfig();
  config.cache_bytes = 2 * 1024;  // force eviction/flush churn
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  std::vector<EntryId> keys(64);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  for (uint64_t batch = 1; batch <= 8; ++batch) {
    TrainStep(store.get(), keys, batch);
    ASSERT_TRUE(store->RequestCheckpoint(batch).ok());
    ASSERT_TRUE(store->DrainCheckpoints().ok());
  }
  // Every superseded record's GC batch has published and no reader holds a
  // snapshot pin, so the version index must be fully garbage-collected —
  // deferred records must not leak across checkpoints.
  EXPECT_EQ(store->SnapshotIndexRecords(), 0u);
}

// The tentpole property test: concurrent MultiGet readers against a live
// training loop never observe a mix of two checkpoint versions. Randomized
// (OE_TEST_SEED reruns a failure); run across >= 3 seeds. The reader
// threads make this binary the serving TSan workload as well.
TEST(ServingTest, SnapshotReadsNeverMixVersionsUnderConcurrentPushes) {
  const uint64_t base_seed = TestSeed(7);
  for (uint64_t seed = base_seed; seed < base_seed + 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto device = MakeDevice();
    StoreConfig config = ServingConfig();
    config.cache_bytes = 2 * 1024;  // eviction churn: flushes defer records
    config.maintainer_threads = 2;
    auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();

    std::vector<EntryId> keys(48);
    for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
    constexpr uint64_t kBatches = 12;
    constexpr int kReaders = 3;

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> max_requested{0};
    std::mutex failure_mutex;
    std::vector<std::string> failures;  // gtest asserts are not thread-safe
    auto record_failure = [&](const std::string& message) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (failures.size() < 5) failures.push_back(message);
    };

    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        Random rng(seed * 1000 + r);
        std::vector<EntryId> query;
        std::vector<float> out;
        std::vector<uint8_t> found;
        while (!stop.load(std::memory_order_acquire)) {
          query.clear();
          const size_t count = 1 + rng.Uniform(keys.size());
          for (size_t i = 0; i < count; ++i) {
            query.push_back(keys[rng.Uniform(keys.size())]);
          }
          out.assign(query.size() * kDim, -1.0f);
          found.assign(query.size(), 2);
          uint64_t cp = ~0ULL;
          const Status status = store->MultiGet(
              query.data(), query.size(), out.data(), found.data(), &cp);
          if (!status.ok()) {
            record_failure("MultiGet failed: " + status.ToString());
            return;
          }
          // A version can publish (maintainer thread) before this test's
          // main thread observes the drain, so the tight bound readers can
          // check is "was ever requested", recorded before the request.
          if (cp > max_requested.load(std::memory_order_acquire)) {
            record_failure("snapshot version " + std::to_string(cp) +
                           " exceeds every requested checkpoint");
            return;
          }
          // Every key exists from checkpoint 1 on, and every weight is
          // exactly -0.5 * cp at checkpoint cp. A single value from any
          // other checkpoint version breaks the equality.
          const float expected = -0.5f * static_cast<float>(cp);
          for (size_t i = 0; i < query.size(); ++i) {
            if (found[i] != (cp >= 1 ? 1 : 0)) {
              record_failure("found[" + std::to_string(i) + "] = " +
                             std::to_string(found[i]) + " at snapshot " +
                             std::to_string(cp));
              return;
            }
            if (cp == 0) continue;
            for (uint32_t d = 0; d < kDim; ++d) {
              const float got = out[i * kDim + d];
              if (got != expected) {
                std::ostringstream os;
                os << "torn snapshot: key " << query[i] << " dim " << d
                   << " = " << got << ", want " << expected << " at cp "
                   << cp;
                record_failure(os.str());
                return;
              }
            }
          }
        }
      });
    }

    for (uint64_t batch = 1; batch <= kBatches; ++batch) {
      TrainStep(store.get(), keys, batch);
      if (::testing::Test::HasFatalFailure()) break;
      max_requested.store(batch, std::memory_order_release);
      ASSERT_TRUE(store->RequestCheckpoint(batch).ok());
      ASSERT_TRUE(store->DrainCheckpoints().ok());
    }
    stop.store(true, std::memory_order_release);
    for (auto& reader : readers) reader.join();
    for (const auto& failure : failures) ADD_FAILURE() << failure;
  }
}

TEST(ServingCacheTest, TagMismatchInvalidatesLazily) {
  ServingCache cache(/*capacity_bytes=*/64 * 1024, kDim);
  std::vector<float> value(kDim, 1.5f);
  cache.Insert(42, /*cp=*/1, value.data());

  std::vector<float> out(kDim, 0.0f);
  EXPECT_TRUE(cache.Lookup(42, /*cp=*/1, out.data()));
  EXPECT_EQ(out[0], 1.5f);

  // Same key at a newer checkpoint: stale entry must not be served.
  EXPECT_FALSE(cache.Lookup(42, /*cp=*/2, out.data()));
  EXPECT_EQ(cache.stats().invalidated.load(), 1u);
  // And the stale entry is gone entirely.
  EXPECT_FALSE(cache.Lookup(42, /*cp=*/1, out.data()));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ServingCacheTest, AdmissionPrefersFrequentKeys) {
  // Capacity of one entry per shard: every insert beyond the first in a
  // shard must win a frequency duel with the resident.
  ServingCache cache(/*capacity_bytes=*/1, kDim);
  std::vector<float> value(kDim, 1.0f);
  std::vector<float> out(kDim);

  // Make key 1 hot (its shard's sketch remembers the probes).
  for (int i = 0; i < 8; ++i) cache.Lookup(1, 1, out.data());
  cache.Insert(1, 1, value.data());
  ASSERT_TRUE(cache.Lookup(1, 1, out.data()));

  // A cold key hashing anywhere must not displace it; probing key 1's own
  // shard directly (same key id ensures same shard) would. Use a batch of
  // cold keys: after all of them, key 1 must still be resident.
  for (uint64_t cold = 100; cold < 116; ++cold) {
    cache.Insert(cold, 1, value.data());
  }
  EXPECT_TRUE(cache.Lookup(1, 1, out.data()));
  EXPECT_GT(cache.stats().rejected.load(), 0u);
}

TEST(ServingCacheTest, HotterKeyEventuallyDisplacesVictim) {
  ServingCache cache(/*capacity_bytes=*/1, kDim);
  std::vector<float> value(kDim, 2.0f);
  std::vector<float> out(kDim);
  cache.Insert(7, 1, value.data());
  // 7 was never probed; 7007 (any key, possibly another shard) gets probed
  // hot, then admitted. If they share a shard it displaces 7; either way
  // the hot key must be resident afterwards.
  for (int i = 0; i < 8; ++i) cache.Lookup(7007, 1, out.data());
  cache.Insert(7007, 1, value.data());
  EXPECT_TRUE(cache.Lookup(7007, 1, out.data()));
}

TEST(ServingClusterTest, ClientMultiGetServesConsistentClusterSnapshot) {
  ClusterOptions options;
  options.num_nodes = 2;
  options.store = ServingConfig();
  options.serving_cache_bytes = 256 * 1024;
  auto cluster = PsCluster::Create(options).ValueOrDie();
  auto& client = cluster->client();

  std::vector<EntryId> keys(32);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  std::vector<float> weights(keys.size() * kDim);
  std::vector<float> grads(keys.size() * kDim, 1.0f);
  for (uint64_t batch = 1; batch <= 3; ++batch) {
    ASSERT_TRUE(
        client.Pull(keys.data(), keys.size(), batch, weights.data()).ok());
    ASSERT_TRUE(client.FinishPullPhase(batch).ok());
    ASSERT_TRUE(
        client.Push(keys.data(), keys.size(), grads.data(), batch).ok());
    ASSERT_TRUE(client.RequestCheckpoint(batch).ok());
    ASSERT_TRUE(client.DrainCheckpoints().ok());
  }

  std::vector<float> out(keys.size() * kDim);
  std::vector<uint8_t> found(keys.size());
  uint64_t cp = 0;
  ASSERT_TRUE(client
                  .MultiGet(keys.data(), keys.size(), out.data(),
                            found.data(), &cp)
                  .ok());
  EXPECT_EQ(cp, 3u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(found[i], 1);
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_EQ(out[i * kDim + d], -1.5f) << "key " << keys[i];
    }
  }

  // Second round hits the per-node serving caches.
  ASSERT_TRUE(client
                  .MultiGet(keys.data(), keys.size(), out.data(),
                            found.data(), &cp)
                  .ok());
  uint64_t hits = 0;
  for (uint32_t node = 0; node < options.num_nodes; ++node) {
    ASSERT_NE(cluster->service(node)->serving_cache(), nullptr);
    hits += cluster->service(node)->serving_cache()->stats().hits.load();
  }
  EXPECT_GT(hits, 0u);
  for (size_t i = 0; i < keys.size(); ++i) {
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_EQ(out[i * kDim + d], -1.5f);
    }
  }
}

TEST(ServingClusterTest, ServingCacheDoesNotServeStaleAfterNewCheckpoint) {
  ClusterOptions options;
  options.num_nodes = 2;
  options.store = ServingConfig();
  options.serving_cache_bytes = 256 * 1024;
  auto cluster = PsCluster::Create(options).ValueOrDie();
  auto& client = cluster->client();

  std::vector<EntryId> keys(16);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  std::vector<float> weights(keys.size() * kDim);
  std::vector<float> grads(keys.size() * kDim, 1.0f);
  std::vector<float> out(keys.size() * kDim);
  std::vector<uint8_t> found(keys.size());

  for (uint64_t batch = 1; batch <= 4; ++batch) {
    ASSERT_TRUE(
        client.Pull(keys.data(), keys.size(), batch, weights.data()).ok());
    ASSERT_TRUE(client.FinishPullPhase(batch).ok());
    ASSERT_TRUE(
        client.Push(keys.data(), keys.size(), grads.data(), batch).ok());
    ASSERT_TRUE(client.RequestCheckpoint(batch).ok());
    ASSERT_TRUE(client.DrainCheckpoints().ok());

    // A read right after every publish must serve the fresh version even
    // though the previous round populated the caches with the old one.
    uint64_t cp = 0;
    ASSERT_TRUE(client
                    .MultiGet(keys.data(), keys.size(), out.data(),
                              found.data(), &cp)
                    .ok());
    ASSERT_EQ(cp, batch);
    const float expected = -0.5f * static_cast<float>(batch);
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(found[i], 1);
      for (uint32_t d = 0; d < kDim; ++d) {
        ASSERT_EQ(out[i * kDim + d], expected)
            << "stale cache serve at batch " << batch;
      }
    }
  }
}

TEST(ServingDefaultEngineTest, BaseClassMultiGetServesLiveValues) {
  // Engines without a versioned read path fall back to the Peek-based
  // default: live values, found flags, PublishedCheckpoint as the version.
  ClusterOptions options;
  options.num_nodes = 1;
  options.kind = storage::StoreKind::kDram;
  options.store = ServingConfig();
  auto cluster = PsCluster::Create(options).ValueOrDie();
  auto* store = cluster->store(0);

  std::vector<EntryId> keys = {5, 6};
  std::vector<float> weights(keys.size() * kDim);
  ASSERT_TRUE(
      store->Pull(keys.data(), keys.size(), 1, weights.data()).ok());
  store->FinishPullPhase(1);
  std::vector<float> grads(keys.size() * kDim, 1.0f);
  ASSERT_TRUE(store->Push(keys.data(), keys.size(), grads.data(), 1).ok());

  const std::vector<EntryId> query = {5, 999, 6};
  std::vector<float> out(query.size() * kDim, 42.0f);
  std::vector<uint8_t> found(query.size(), 2);
  uint64_t cp = ~0ULL;
  ASSERT_TRUE(store
                  ->MultiGet(query.data(), query.size(), out.data(),
                             found.data(), &cp)
                  .ok());
  EXPECT_EQ(cp, store->PublishedCheckpoint());
  EXPECT_EQ(found[0], 1);
  EXPECT_EQ(found[1], 0);
  EXPECT_EQ(found[2], 1);
  for (uint32_t d = 0; d < kDim; ++d) {
    EXPECT_EQ(out[0 * kDim + d], -0.5f);
    EXPECT_EQ(out[1 * kDim + d], 0.0f);
    EXPECT_EQ(out[2 * kDim + d], -0.5f);
  }
}

}  // namespace
}  // namespace oe

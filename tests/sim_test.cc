#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/pricing.h"
#include "sim/training_sim.h"

namespace oe::sim {
namespace {

using storage::StoreKind;

TEST(CostModelTest, DeviceTimeScalesWithTraffic) {
  CostModel model;
  pmem::DeviceStats::Snapshot small{1 << 20, 1 << 20, 10, 10, 0};
  pmem::DeviceStats::Snapshot large{64 << 20, 64 << 20, 10, 10, 0};
  EXPECT_LT(model.DeviceTime(small, pmem::PmemTiming()),
            model.DeviceTime(large, pmem::PmemTiming()));
}

TEST(CostModelTest, PmemSlowerThanDramForSameTraffic) {
  CostModel model;
  pmem::DeviceStats::Snapshot traffic{32 << 20, 32 << 20, 1000, 1000, 100};
  EXPECT_GT(model.DeviceTime(traffic, pmem::PmemTiming()),
            model.DeviceTime(traffic, pmem::DramTiming()));
  EXPECT_GT(model.DeviceTime(traffic, pmem::SsdTiming()),
            model.DeviceTime(traffic, pmem::PmemTiming()));
}

TEST(CostModelTest, ContentionGrowsWithWorkers) {
  CostModel model;
  EXPECT_LT(model.ContentionTime(10000, 4), model.ContentionTime(10000, 16));
  EXPECT_EQ(model.ContentionTime(0, 16), 0);
}

TEST(CostModelTest, NetworkTimeHasRttAndBandwidth) {
  NetworkSpec network;
  network.bandwidth_gbps = 1.0;  // 1 byte/ns
  network.rtt_ns = 1000;
  CostModel model(network, ContentionSpec{});
  EXPECT_EQ(model.NetworkTime(0, 0), 0);
  EXPECT_EQ(model.NetworkTime(1000000, 1), 1000000 + 1000);
}

TEST(CostModelTest, NetworkTimePaysRttPerWave) {
  NetworkSpec network;
  network.bandwidth_gbps = 1.0;  // 1 byte/ns
  network.rtt_ns = 1000;
  CostModel model(network, ContentionSpec{});
  // parallelism <= 0: all requests overlap, one round trip.
  EXPECT_EQ(model.NetworkTime(0, 64, 0), 1000);
  // 64 requests at 8 in flight = 8 waves.
  EXPECT_EQ(model.NetworkTime(0, 64, 8), 8 * 1000);
  // Partial last wave still costs a full round trip.
  EXPECT_EQ(model.NetworkTime(0, 65, 8), 9 * 1000);
  // More slots than requests collapses back to one wave.
  EXPECT_EQ(model.NetworkTime(500, 4, 16), 500 + 1000);
}

TEST(PricingTest, TableFiveConstants) {
  // Table V: 2 DRAM servers at $6.07/h vs 1 PMem server at $3.80/h for a
  // >500 GB model.
  PsDeployment dram{DramServerSpec(), DramMachinesFor(500)};
  PsDeployment pmem{PmemServerSpec(), PmemMachinesFor(500)};
  EXPECT_EQ(dram.machines, 2);
  EXPECT_EQ(pmem.machines, 1);
  EXPECT_NEAR(dram.DollarsPerHour(), 6.07, 0.01);
  EXPECT_NEAR(pmem.DollarsPerHour(), 3.80, 0.01);
  // Paper: $34.9 vs $20.3 per epoch -> 42% storage-cost saving.
  const double dram_epoch = dram.DollarsPerEpoch(5.75);
  const double pmem_epoch = pmem.DollarsPerEpoch(5.33);
  EXPECT_NEAR(dram_epoch, 34.9, 0.1);
  EXPECT_NEAR(pmem_epoch, 20.3, 0.1);
  EXPECT_NEAR(1.0 - pmem_epoch / dram_epoch, 0.42, 0.01);
}

SimOptions SmallSim(StoreKind kind, int gpus) {
  SimOptions options;
  options.kind = kind;
  options.num_gpus = gpus;
  options.num_keys = 1 << 17;
  options.keys_per_worker_batch = 2048;
  options.rounds = 8;
  options.num_nodes = 1;
  options.store.dim = 16;
  options.store.cache_bytes = 1 << 20;
  options.store.pmem_hash_buckets = 1 << 15;
  options.pmem_bytes_per_node = 256ULL << 20;
  return options;
}

TEST(TrainingSimTest, RunsAndReportsRounds) {
  TrainingSimulator simulator(SmallSim(StoreKind::kPipelined, 4));
  auto report = simulator.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().rounds, 8u);
  EXPECT_GT(report.value().epoch_ns, 0);
  EXPECT_GT(report.value().miss_rate, 0.0);
  EXPECT_LT(report.value().miss_rate, 1.0);
}

TEST(TrainingSimTest, PipelineHidesMaintenance) {
  // With the pipeline on, maintenance overlaps GPU compute; the same
  // workload with the pipeline off pays it on the critical path.
  auto on = SmallSim(StoreKind::kPipelined, 8);
  auto off = on;
  off.store.pipeline_enabled = false;
  auto report_on = TrainingSimulator(on).Run();
  auto report_off = TrainingSimulator(off).Run();
  ASSERT_TRUE(report_on.ok());
  ASSERT_TRUE(report_off.ok());
  EXPECT_LT(report_on.value().epoch_ns, report_off.value().epoch_ns);
}

TEST(TrainingSimTest, OrderingMatchesPaperAtSixteenGpus) {
  // Fig. 7 shape: DRAM-PS <= PMem-OE < Ori-Cache, and PMem-Hash worst.
  auto dram = TrainingSimulator(SmallSim(StoreKind::kDram, 16)).Run();
  auto oe = TrainingSimulator(SmallSim(StoreKind::kPipelined, 16)).Run();
  auto ori = TrainingSimulator(SmallSim(StoreKind::kOriCache, 16)).Run();
  ASSERT_TRUE(dram.ok());
  ASSERT_TRUE(oe.ok());
  ASSERT_TRUE(ori.ok());
  EXPECT_LE(dram.value().epoch_ns, oe.value().epoch_ns);
  EXPECT_LT(oe.value().epoch_ns, ori.value().epoch_ns);
}

TEST(TrainingSimTest, MissRateFallsWithBiggerCache) {
  auto small_cache = SmallSim(StoreKind::kPipelined, 4);
  small_cache.store.cache_bytes = 64 << 10;
  auto big_cache = SmallSim(StoreKind::kPipelined, 4);
  big_cache.store.cache_bytes = 8 << 20;
  auto small_report = TrainingSimulator(small_cache).Run();
  auto big_report = TrainingSimulator(big_cache).Run();
  ASSERT_TRUE(small_report.ok());
  ASSERT_TRUE(big_report.ok());
  EXPECT_GT(small_report.value().miss_rate, big_report.value().miss_rate);
}

TEST(TrainingSimTest, CheckpointAddsBoundedOverheadForPipelined) {
  auto base = SmallSim(StoreKind::kPipelined, 8);
  auto with_ckpt = base;
  with_ckpt.checkpoints_per_epoch = 4;
  with_ckpt.dense_checkpoint = false;  // Sparse Only (Table IV)
  auto report_base = TrainingSimulator(base).Run();
  auto report_ckpt = TrainingSimulator(with_ckpt).Run();
  ASSERT_TRUE(report_base.ok());
  ASSERT_TRUE(report_ckpt.ok());
  // Fig. 12: the sparse-only batch-aware checkpoint is near-free.
  const double overhead =
      static_cast<double>(report_ckpt.value().epoch_ns) /
          static_cast<double>(report_base.value().epoch_ns) -
      1.0;
  EXPECT_LT(overhead, 0.05);
}

}  // namespace
}  // namespace oe::sim

// SlabAllocator unit + crash-consistency tests: the two-persist protocol
// ("slab-commit" payload persist, then one failure-atomic "slab-publish"
// bitmap-bit store) must never leak a block or resurrect an uncommitted
// one, across clean restarts and crashes at every leg of the protocol.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pmem/device.h"
#include "pmem/fault_plan.h"
#include "pmem/pool.h"
#include "pmem/slab_allocator.h"
#include "test_util.h"

namespace oe::pmem {
namespace {

struct SlabRig {
  std::unique_ptr<PmemDevice> device;
  std::unique_ptr<PmemPool> pool;
  std::unique_ptr<SlabAllocator> slab;
};

SlabRig MakeRig(uint32_t lanes = 2) {
  SlabRig rig;
  rig.device = oe::test::MakeDevice({.size_bytes = 4 << 20});
  rig.pool = PmemPool::Create(rig.device.get()).ValueOrDie();
  SlabAllocatorOptions options;
  options.lanes = lanes;
  options.blocks_per_slab = 8;  // small slabs: growth paths fire in-test
  rig.slab = SlabAllocator::Attach(rig.pool.get(), options).ValueOrDie();
  return rig;
}

std::vector<uint8_t> Payload(uint64_t size, uint8_t seed) {
  std::vector<uint8_t> data(size);
  for (uint64_t i = 0; i < size; ++i) data[i] = static_cast<uint8_t>(seed + i);
  return data;
}

/// All committed (offset, size) pairs, sorted for comparison.
std::vector<std::pair<uint64_t, uint64_t>> Blocks(const SlabAllocator& slab) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  slab.ForEachAllocated([&](uint64_t off, uint64_t size) {
    out.emplace_back(off, size);
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SlabAllocatorTest, AllocCommitFreeRoundTrip) {
  SlabRig rig = MakeRig();
  const auto data = Payload(52, 7);
  const uint64_t off =
      rig.slab->AllocWrite(data.data(), data.size(), /*lane=*/0).ValueOrDie();
  EXPECT_EQ(rig.slab->AllocatedBytes(), 52u);
  EXPECT_EQ(std::memcmp(rig.pool->Translate(off), data.data(), data.size()),
            0);
  const auto blocks = Blocks(*rig.slab);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], std::make_pair(off, uint64_t{52}));
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());

  ASSERT_TRUE(rig.slab->Free(off).ok());
  EXPECT_EQ(rig.slab->AllocatedBytes(), 0u);
  EXPECT_TRUE(Blocks(*rig.slab).empty());
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
}

TEST(SlabAllocatorTest, ExactSizeClassesAndLaneIsolation) {
  SlabRig rig = MakeRig(/*lanes=*/2);
  const auto a = Payload(24, 1);
  const auto b = Payload(40, 2);
  const uint64_t off_a = rig.slab->AllocWrite(a.data(), 24, 0).ValueOrDie();
  const uint64_t off_b = rig.slab->AllocWrite(b.data(), 40, 1).ValueOrDie();
  // Different size classes and lanes come from different extents.
  EXPECT_EQ(rig.slab->ExtentCount(), 2u);
  const auto blocks = Blocks(*rig.slab);
  ASSERT_EQ(blocks.size(), 2u);
  // ForEachAllocated reports the exact Alloc size, never the 8B stride.
  EXPECT_EQ(blocks[0].second + blocks[1].second, 64u);
  EXPECT_NE(off_a, off_b);
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
}

TEST(SlabAllocatorTest, FreeIsLifoAndDoubleFreeIsCaught) {
  SlabRig rig = MakeRig();
  const auto data = Payload(16, 3);
  const uint64_t off = rig.slab->AllocWrite(data.data(), 16, 0).ValueOrDie();
  ASSERT_TRUE(rig.slab->Free(off).ok());
  // Double free of the same block must be rejected, not corrupt the bitmap.
  EXPECT_TRUE(rig.slab->Free(off).code() == StatusCode::kFailedPrecondition);
  // The freed block is the next one handed out for this (size, lane).
  EXPECT_EQ(rig.slab->AllocWrite(data.data(), 16, 0).ValueOrDie(), off);
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
}

TEST(SlabAllocatorTest, GrowsNewExtentWhenClassExhausted) {
  SlabRig rig = MakeRig();
  std::vector<uint64_t> offs;
  const auto data = Payload(32, 4);
  for (int i = 0; i < 20; ++i) {  // > blocks_per_slab = 8: two growths
    offs.push_back(rig.slab->AllocWrite(data.data(), 32, 0).ValueOrDie());
  }
  EXPECT_EQ(rig.slab->ExtentCount(), 3u);
  EXPECT_EQ(Blocks(*rig.slab).size(), 20u);
  EXPECT_EQ(rig.slab->AllocatedBytes(), 20u * 32u);
  for (uint64_t off : offs) ASSERT_TRUE(rig.slab->Free(off).ok());
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
}

// Clean re-attach (restart, no crash): committed blocks survive, freed and
// never-committed blocks are back on the free lists.
TEST(SlabAllocatorTest, AttachRebuildsFromBitmaps) {
  SlabRig rig = MakeRig();
  const auto data = Payload(48, 5);
  const uint64_t keep = rig.slab->AllocWrite(data.data(), 48, 0).ValueOrDie();
  const uint64_t gone = rig.slab->AllocWrite(data.data(), 48, 0).ValueOrDie();
  ASSERT_TRUE(rig.slab->Free(gone).ok());
  // An Alloc that never reached Commit: volatile-only, must vanish.
  const uint64_t uncommitted = rig.slab->Alloc(48, 0).ValueOrDie();
  EXPECT_NE(uncommitted, keep);

  SlabAllocatorOptions options;
  options.lanes = 2;
  options.blocks_per_slab = 8;
  rig.slab = SlabAllocator::Attach(rig.pool.get(), options).ValueOrDie();
  const auto blocks = Blocks(*rig.slab);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], std::make_pair(keep, uint64_t{48}));
  EXPECT_EQ(rig.slab->AllocatedBytes(), 48u);
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
  // The abandoned block is allocatable again (no leak).
  std::vector<uint64_t> offs;
  for (int i = 0; i < 7; ++i) {
    offs.push_back(rig.slab->AllocWrite(data.data(), 48, 0).ValueOrDie());
  }
  EXPECT_EQ(rig.slab->ExtentCount(), 1u);  // 8 blocks total: no growth needed
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
}

/// Replays `script` on a fresh rig with `plan` installed, simulates the
/// crash, reopens the pool and re-attaches. Returns the recovered rig.
/// The script must be deterministic so persist ordinals line up with the
/// counting run.
SlabRig CrashAndRecover(const std::function<void(SlabRig&)>& script,
                        const FaultPlan& plan) {
  SlabRig rig = MakeRig();
  rig.device->InstallFaultPlan(plan);
  script(rig);
  rig.device->SimulateCrash();
  rig.device->ClearFault();
  rig.slab.reset();
  rig.pool = PmemPool::Open(rig.device.get()).ValueOrDie();
  SlabAllocatorOptions options;
  options.lanes = 2;
  options.blocks_per_slab = 8;
  rig.slab = SlabAllocator::Attach(rig.pool.get(), options).ValueOrDie();
  return rig;
}

/// Persist-event ordinal of the `nth` event whose site contains `substr`
/// while running `script` fault-free.
uint64_t FindEvent(const std::function<void(SlabRig&)>& script,
                   const std::string& substr, int nth) {
  SlabRig rig = MakeRig();
  rig.device->EnableEventTrace(true);
  rig.device->InstallFaultPlan(FaultPlan{});
  script(rig);
  const auto trace = rig.device->TakeEventTrace();
  int seen = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].find(substr) != std::string::npos && ++seen == nth) {
      return i + 1;
    }
  }
  return 0;
}

// The canonical torn-allocation crash: payload persisted ("slab-commit"
// done) but the crash lands on the bitmap publish. The block must recover
// as free — present in no scan, owned by no one, and reusable.
TEST(SlabAllocatorTest, CrashBetweenPayloadPersistAndBitmapPublish) {
  const auto data = Payload(36, 6);
  uint64_t first = 0;
  auto script = [&](SlabRig& rig) {
    first = rig.slab->AllocWrite(data.data(), 36, 0).ValueOrDie();
    // The doomed leg: statuses after the crash point are unspecified.
    auto doomed = rig.slab->AllocWrite(data.data(), 36, 0);
    (void)doomed;
  };
  const uint64_t publish2 = FindEvent(script, "slab-publish", 2);
  ASSERT_GT(publish2, 0u);
  FaultPlan plan;
  plan.crash_at = publish2;
  SlabRig rig = CrashAndRecover(script, plan);
  const auto blocks = Blocks(*rig.slab);
  ASSERT_EQ(blocks.size(), 1u);  // only the first allocation survived
  EXPECT_EQ(blocks[0].first, first);
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
  // The rolled-back block is free again: seven more allocs fit the slab.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(rig.slab->AllocWrite(data.data(), 36, 0).ok());
  }
  EXPECT_EQ(rig.slab->ExtentCount(), 1u);
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
}

// Crash on the payload persist itself: neither payload nor bit reaches
// PMem; recovery sees an empty slab.
TEST(SlabAllocatorTest, CrashOnPayloadPersistLosesTheBlock) {
  const auto data = Payload(36, 7);
  auto script = [&](SlabRig& rig) {
    auto doomed = rig.slab->AllocWrite(data.data(), 36, 0);
    (void)doomed;
  };
  const uint64_t commit1 = FindEvent(script, "slab-commit", 1);
  ASSERT_GT(commit1, 0u);
  FaultPlan plan;
  plan.crash_at = commit1;
  SlabRig rig = CrashAndRecover(script, plan);
  EXPECT_TRUE(Blocks(*rig.slab).empty());
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
}

// A dropped publish (flush reported success but never reached the media)
// vanishes at the crash: the block silently rolls back to free, which is
// exactly the never-allocated outcome — no leak, no half-committed state.
TEST(SlabAllocatorTest, DroppedBitmapPublishRollsBackToFree) {
  const auto data = Payload(60, 8);
  auto script = [&](SlabRig& rig) {
    auto r = rig.slab->AllocWrite(data.data(), 60, 0);
    ASSERT_TRUE(r.ok());  // a drop is invisible to the running program
  };
  const uint64_t publish1 = FindEvent(script, "slab-publish", 1);
  ASSERT_GT(publish1, 0u);
  FaultPlan plan;
  plan.drop_at = publish1;
  SlabRig rig = CrashAndRecover(script, plan);
  EXPECT_TRUE(Blocks(*rig.slab).empty());
  EXPECT_EQ(rig.slab->AllocatedBytes(), 0u);
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
  ASSERT_TRUE(rig.slab->AllocWrite(data.data(), 60, 0).ok());
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
}

// A dropped free resurrects the block at the crash (bit still set). That
// must surface as a committed block again — allocator-level newest-wins is
// the *store's* job; the slab just may not corrupt its own accounting.
TEST(SlabAllocatorTest, DroppedFreeResurrectsTheBlockConsistently) {
  const auto data = Payload(44, 9);
  auto script = [&](SlabRig& rig) {
    const uint64_t off = rig.slab->AllocWrite(data.data(), 44, 0).ValueOrDie();
    ASSERT_TRUE(rig.slab->Free(off).ok());
  };
  const uint64_t free1 = FindEvent(script, "slab-free", 1);
  ASSERT_GT(free1, 0u);
  FaultPlan plan;
  plan.drop_at = free1;
  SlabRig rig = CrashAndRecover(script, plan);
  const auto blocks = Blocks(*rig.slab);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].second, 44u);
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
  ASSERT_TRUE(rig.slab->Free(blocks[0].first).ok());
  ASSERT_TRUE(rig.slab->CheckConsistency().ok());
}

// Crashing inside extent growth ("slab-format" wraps the pool's own alloc
// protocol) must roll the whole extent back: the pool reclaims the
// kAllocating extent on Open and the slab attaches to nothing.
TEST(SlabAllocatorTest, CrashDuringExtentFormatLeavesNoExtent) {
  const auto data = Payload(28, 10);
  auto script = [&](SlabRig& rig) {
    auto doomed = rig.slab->AllocWrite(data.data(), 28, 0);
    (void)doomed;
  };
  for (int nth = 1; nth <= 2; ++nth) {
    const uint64_t e = FindEvent(script, "slab-format", nth);
    if (e == 0) break;  // fewer format-persist legs than probed: done
    FaultPlan plan;
    plan.crash_at = e;
    SlabRig rig = CrashAndRecover(script, plan);
    EXPECT_EQ(rig.slab->ExtentCount(), 0u) << "format persist #" << nth;
    EXPECT_TRUE(Blocks(*rig.slab).empty());
    ASSERT_TRUE(rig.slab->CheckConsistency().ok());
    // And the pool space is reusable: a fresh alloc succeeds.
    ASSERT_TRUE(rig.slab->AllocWrite(data.data(), 28, 0).ok());
    ASSERT_TRUE(rig.slab->CheckConsistency().ok());
  }
}

}  // namespace
}  // namespace oe::pmem

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "pmem/device.h"
#include "storage/dram_store.h"
#include "storage/ori_cache_store.h"
#include "storage/pipelined_store.h"
#include "storage/pmem_hash_store.h"
#include "test_util.h"

namespace oe::storage {
namespace {

using oe::test::MakeDevice;
using pmem::CrashFidelity;
using pmem::PmemDevice;
using pmem::PmemDeviceOptions;

constexpr uint32_t kDim = oe::test::kSmallDim;

StoreConfig SmallConfig() {
  StoreConfig config = oe::test::SmallConfig();
  config.initializer.kind = InitializerKind::kUniform;
  config.initializer.scale = 0.1f;  // nonzero init so fresh pulls differ
  return config;
}

// ---------- Optimizer unit tests ----------

TEST(OptimizerTest, SgdStep) {
  OptimizerSpec spec;
  spec.kind = OptimizerKind::kSgd;
  spec.learning_rate = 0.1f;
  float w[2] = {1.0f, -1.0f};
  float g[2] = {1.0f, 2.0f};
  spec.Apply(w, nullptr, g, 2, 1);
  EXPECT_FLOAT_EQ(w[0], 0.9f);
  EXPECT_FLOAT_EQ(w[1], -1.2f);
}

TEST(OptimizerTest, AdaGradAccumulates) {
  OptimizerSpec spec;
  spec.kind = OptimizerKind::kAdaGrad;
  spec.learning_rate = 1.0f;
  EXPECT_EQ(spec.Slots(), 1u);
  float w[1] = {0.0f};
  float acc[1] = {0.0f};
  float g[1] = {2.0f};
  spec.Apply(w, acc, g, 1, 1);
  EXPECT_FLOAT_EQ(acc[0], 4.0f);
  EXPECT_NEAR(w[0], -1.0f, 1e-5);  // -lr * 2/sqrt(4)
  spec.Apply(w, acc, g, 1, 2);
  EXPECT_FLOAT_EQ(acc[0], 8.0f);  // second step accumulates
}

TEST(OptimizerTest, AdamMovesTowardGradientDirection) {
  OptimizerSpec spec;
  spec.kind = OptimizerKind::kAdam;
  spec.learning_rate = 0.01f;
  EXPECT_EQ(spec.Slots(), 2u);
  float w[1] = {1.0f};
  float state[2] = {0.0f, 0.0f};
  float g[1] = {1.0f};
  for (uint64_t step = 1; step <= 10; ++step) {
    spec.Apply(w, state, g, 1, step);
  }
  EXPECT_LT(w[0], 1.0f);  // positive gradient decreases the weight
  EXPECT_GT(state[0], 0.0f);
  EXPECT_GT(state[1], 0.0f);
}

TEST(InitializerTest, DeterministicPerKey) {
  InitializerSpec spec;
  spec.kind = InitializerKind::kUniform;
  spec.scale = 0.5f;
  float a[4], b[4], c[4];
  spec.Fill(7, a, 4);
  spec.Fill(7, b, 4);
  spec.Fill(8, c, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_GE(a[i], -0.5f);
    EXPECT_LE(a[i], 0.5f);
  }
  bool any_diff = false;
  for (int i = 0; i < 4; ++i) any_diff |= (a[i] != c[i]);
  EXPECT_TRUE(any_diff);
}

TEST(InitializerTest, ZerosKind) {
  InitializerSpec spec;
  spec.kind = InitializerKind::kZeros;
  float a[4] = {9, 9, 9, 9};
  spec.Fill(1, a, 4);
  for (float v : a) EXPECT_EQ(v, 0.0f);
}

TEST(EntryLayoutTest, SizesAndAccessors) {
  EntryLayout layout(64, 1);
  EXPECT_EQ(layout.values_per_entry(), 128u);
  EXPECT_EQ(layout.data_bytes(), 512u);
  EXPECT_EQ(layout.record_bytes(), 528u);
  std::vector<uint8_t> rec(layout.record_bytes());
  EntryLayout::SetRecordHeader(rec.data(), 42, 7);
  EXPECT_EQ(EntryLayout::RecordKey(rec.data()), 42u);
  EXPECT_EQ(EntryLayout::RecordVersion(rec.data()), 7u);
  EntryLayout::SetRecordVersion(rec.data(), 9);
  EXPECT_EQ(EntryLayout::RecordVersion(rec.data()), 9u);
}

// ---------- Shared behavioural tests over both engines ----------

enum class Engine {
  kDram,
  kPipelined,
  kPipelinedNoPipe,
  kPipelinedNoCache,
  kOriCache,
  kPmemHash,
};

struct EngineFixture {
  std::unique_ptr<PmemDevice> store_device;
  std::unique_ptr<PmemDevice> log_device;
  std::unique_ptr<ckpt::CheckpointLog> log;
  std::unique_ptr<EmbeddingStore> store;
};

EngineFixture MakeEngine(Engine engine, StoreConfig config = SmallConfig()) {
  EngineFixture fixture;
  switch (engine) {
    case Engine::kDram: {
      fixture.log_device = MakeDevice();
      EntryLayout layout(config.dim, config.optimizer.Slots());
      fixture.log =
          ckpt::CheckpointLog::Create(fixture.log_device.get(), layout)
              .ValueOrDie();
      fixture.store = DramStore::Create(config, fixture.log.get()).ValueOrDie();
      break;
    }
    case Engine::kPipelined:
      fixture.store_device = MakeDevice();
      fixture.store =
          PipelinedStore::Create(config, fixture.store_device.get())
              .ValueOrDie();
      break;
    case Engine::kPipelinedNoPipe:
      config.pipeline_enabled = false;
      fixture.store_device = MakeDevice();
      fixture.store =
          PipelinedStore::Create(config, fixture.store_device.get())
              .ValueOrDie();
      break;
    case Engine::kPipelinedNoCache:
      config.cache_enabled = false;
      fixture.store_device = MakeDevice();
      fixture.store =
          PipelinedStore::Create(config, fixture.store_device.get())
              .ValueOrDie();
      break;
    case Engine::kOriCache: {
      fixture.store_device = MakeDevice();
      fixture.log_device = MakeDevice();
      EntryLayout layout(config.dim, config.optimizer.Slots());
      fixture.log =
          ckpt::CheckpointLog::Create(fixture.log_device.get(), layout)
              .ValueOrDie();
      fixture.store = OriCacheStore::Create(config, fixture.store_device.get(),
                                            fixture.log.get())
                          .ValueOrDie();
      break;
    }
    case Engine::kPmemHash:
      fixture.store_device = MakeDevice();
      fixture.store =
          PmemHashStore::Create(config, fixture.store_device.get())
              .ValueOrDie();
      break;
  }
  return fixture;
}

class StoreBehaviorTest : public ::testing::TestWithParam<Engine> {};

TEST_P(StoreBehaviorTest, PullInitializesDeterministically) {
  auto fixture = MakeEngine(GetParam());
  std::vector<EntryId> keys = {1, 2, 3};
  std::vector<float> out(keys.size() * kDim);
  ASSERT_TRUE(fixture.store->Pull(keys.data(), keys.size(), 1, out.data()).ok());

  // Same keys from a second engine instance produce identical weights.
  auto fixture2 = MakeEngine(GetParam());
  std::vector<float> out2(out.size());
  ASSERT_TRUE(
      fixture2.store->Pull(keys.data(), keys.size(), 1, out2.data()).ok());
  EXPECT_EQ(out, out2);
  EXPECT_EQ(fixture.store->EntryCount(), 3u);
}

TEST_P(StoreBehaviorTest, PushAppliesSgd) {
  auto fixture = MakeEngine(GetParam());
  EntryId key = 77;
  std::vector<float> before(kDim);
  ASSERT_TRUE(fixture.store->Pull(&key, 1, 1, before.data()).ok());
  fixture.store->FinishPullPhase(1);
  std::vector<float> grad(kDim, 1.0f);
  ASSERT_TRUE(fixture.store->Push(&key, 1, grad.data(), 1).ok());

  auto after = fixture.store->Peek(key);
  ASSERT_TRUE(after.ok());
  for (uint32_t i = 0; i < kDim; ++i) {
    EXPECT_NEAR(after.value()[i], before[i] - 0.5f, 1e-5);  // lr = 0.5
  }
}

TEST_P(StoreBehaviorTest, PushUnknownKeyFails) {
  auto fixture = MakeEngine(GetParam());
  EntryId key = 1;
  std::vector<float> grad(kDim, 1.0f);
  EXPECT_FALSE(fixture.store->Push(&key, 1, grad.data(), 1).ok());
}

TEST_P(StoreBehaviorTest, ManyBatchesConvergeLikeReference) {
  // Train every engine the same way; all must produce identical weights
  // (the engines differ in placement and durability, not math).
  auto fixture = MakeEngine(GetParam());
  Random rng(42);
  const size_t kKeys = 64;
  std::map<EntryId, std::vector<float>> reference;

  for (uint64_t batch = 1; batch <= 20; ++batch) {
    std::vector<EntryId> keys;
    for (int i = 0; i < 16; ++i) keys.push_back(rng.Uniform(kKeys));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    std::vector<float> weights(keys.size() * kDim);
    ASSERT_TRUE(fixture.store
                    ->Pull(keys.data(), keys.size(), batch, weights.data())
                    .ok());
    fixture.store->FinishPullPhase(batch);

    std::vector<float> grads(keys.size() * kDim);
    for (auto& g : grads) g = rng.UniformFloat(-0.1f, 0.1f);
    ASSERT_TRUE(fixture.store
                    ->Push(keys.data(), keys.size(), grads.data(), batch)
                    .ok());

    // Maintain an independent reference model.
    for (size_t i = 0; i < keys.size(); ++i) {
      auto& ref = reference[keys[i]];
      if (ref.empty()) {
        ref.resize(kDim);
        SmallConfig().initializer.Fill(keys[i], ref.data(), kDim);
      }
      for (uint32_t d = 0; d < kDim; ++d) {
        ref[d] -= 0.5f * grads[i * kDim + d];
      }
    }
  }

  for (const auto& [key, ref] : reference) {
    auto got = fixture.store->Peek(key);
    ASSERT_TRUE(got.ok()) << key;
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_NEAR(got.value()[d], ref[d], 1e-4) << "key " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, StoreBehaviorTest,
                         ::testing::Values(Engine::kDram, Engine::kPipelined,
                                           Engine::kPipelinedNoPipe,
                                           Engine::kPipelinedNoCache,
                                           Engine::kOriCache,
                                           Engine::kPmemHash),
                         [](const auto& info) {
                           switch (info.param) {
                             case Engine::kDram:
                               return "DramPs";
                             case Engine::kPipelined:
                               return "PmemOe";
                             case Engine::kPipelinedNoPipe:
                               return "PmemOeNoPipeline";
                             case Engine::kPipelinedNoCache:
                               return "PmemOeNoCache";
                             case Engine::kOriCache:
                               return "OriCache";
                             case Engine::kPmemHash:
                               return "PmemHash";
                           }
                           return "Unknown";
                         });

// ---------- DramStore-specific: incremental checkpoint + recovery ----------

TEST(DramStoreTest, CheckpointAndRecoverRoundTrip) {
  auto fixture = MakeEngine(Engine::kDram);
  std::vector<EntryId> keys = {10, 20, 30};
  std::vector<float> w(keys.size() * kDim);
  ASSERT_TRUE(fixture.store->Pull(keys.data(), keys.size(), 1, w.data()).ok());
  std::vector<float> g(keys.size() * kDim, 0.2f);
  ASSERT_TRUE(fixture.store->Push(keys.data(), keys.size(), g.data(), 1).ok());
  ASSERT_TRUE(fixture.store->RequestCheckpoint(1).ok());
  EXPECT_EQ(fixture.store->PublishedCheckpoint(), 1u);

  auto expected = fixture.store->Peek(10).ValueOrDie();

  // Updates after the checkpoint must vanish on recovery.
  ASSERT_TRUE(fixture.store->Pull(keys.data(), keys.size(), 2, w.data()).ok());
  ASSERT_TRUE(fixture.store->Push(keys.data(), keys.size(), g.data(), 2).ok());
  ASSERT_TRUE(fixture.store->RecoverFromCrash().ok());

  EXPECT_EQ(fixture.store->EntryCount(), 3u);
  auto recovered = fixture.store->Peek(10).ValueOrDie();
  EXPECT_EQ(recovered, expected);
}

TEST(DramStoreTest, IncrementalCheckpointOnlyCopiesDirty) {
  auto fixture = MakeEngine(Engine::kDram);
  std::vector<EntryId> keys(100);
  std::iota(keys.begin(), keys.end(), 0);
  std::vector<float> w(keys.size() * kDim);
  ASSERT_TRUE(fixture.store->Pull(keys.data(), keys.size(), 1, w.data()).ok());
  ASSERT_TRUE(fixture.store->RequestCheckpoint(1).ok());
  const uint64_t after_full = fixture.log->UsedBytes();

  // Touch only 5 entries; the next checkpoint should be much smaller.
  std::vector<float> g(5 * kDim, 0.1f);
  ASSERT_TRUE(fixture.store->Pull(keys.data(), 5, 2, w.data()).ok());
  ASSERT_TRUE(fixture.store->Push(keys.data(), 5, g.data(), 2).ok());
  ASSERT_TRUE(fixture.store->RequestCheckpoint(2).ok());
  const uint64_t delta = fixture.log->UsedBytes() - after_full;
  EXPECT_LT(delta, after_full / 10);
}

TEST(DramStoreTest, RecoverWithoutLogFails) {
  auto store = DramStore::Create(SmallConfig(), nullptr).ValueOrDie();
  EXPECT_FALSE(store->RecoverFromCrash().ok());
  EXPECT_FALSE(store->RequestCheckpoint(1).ok());
}

// ---------- PipelinedStore-specific ----------

class PipelinedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = MakeDevice();
    config_ = SmallConfig();
    store_ = PipelinedStore::Create(config_, device_.get()).ValueOrDie();
  }

  // One synchronous training batch over `keys` with constant gradient g.
  void RunBatch(uint64_t batch, const std::vector<EntryId>& keys, float g) {
    std::vector<float> w(keys.size() * kDim);
    ASSERT_TRUE(
        store_->Pull(keys.data(), keys.size(), batch, w.data()).ok());
    store_->FinishPullPhase(batch);
    std::vector<float> grads(keys.size() * kDim, g);
    ASSERT_TRUE(
        store_->Push(keys.data(), keys.size(), grads.data(), batch).ok());
  }

  std::unique_ptr<PmemDevice> device_;
  StoreConfig config_;
  std::unique_ptr<PipelinedStore> store_;
};

TEST_F(PipelinedStoreTest, CacheCapacityMatchesBudget) {
  EntryLayout layout(kDim, 0);
  EXPECT_EQ(store_->CacheCapacityEntries(),
            config_.cache_bytes / layout.record_bytes());
}

TEST_F(PipelinedStoreTest, EvictionKeepsCacheWithinCapacity) {
  const size_t capacity = store_->CacheCapacityEntries();
  std::vector<EntryId> keys(capacity * 3);
  std::iota(keys.begin(), keys.end(), 0);
  RunBatch(1, keys, 0.0f);
  store_->WaitMaintenance(1);
  EXPECT_LE(store_->CachedEntries(), capacity);
  EXPECT_GT(store_->stats().evictions.load(), 0u);
  EXPECT_EQ(store_->EntryCount(), keys.size());
}

TEST_F(PipelinedStoreTest, EvictedEntriesReadBackFromPmem) {
  const size_t capacity = store_->CacheCapacityEntries();
  std::vector<EntryId> keys(capacity * 2);
  std::iota(keys.begin(), keys.end(), 0);
  RunBatch(1, keys, 0.25f);
  store_->WaitMaintenance(1);

  // Every key must still return its updated value, cached or not.
  for (EntryId key : keys) {
    std::vector<float> init(kDim);
    config_.initializer.Fill(key, init.data(), kDim);
    auto got = store_->Peek(key).ValueOrDie();
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_NEAR(got[d], init[d] - 0.5f * 0.25f, 1e-5) << key;
    }
  }
  EXPECT_GT(store_->stats().flushes.load(), 0u);
}

TEST_F(PipelinedStoreTest, HitRateHighForRepeatedKeys) {
  std::vector<EntryId> keys = {1, 2, 3, 4};
  for (uint64_t batch = 1; batch <= 10; ++batch) RunBatch(batch, keys, 0.0f);
  // First batch misses (first touch) then all hits.
  EXPECT_GT(store_->stats().HitRate(), 0.85);
}

// ---------- Frequency-aware cache policy ----------

class FreqPolicyTest : public PipelinedStoreTest {
 protected:
  void SetUp() override {
    device_ = MakeDevice();
    config_ = SmallConfig();
    config_.cache_policy = CachePolicy::kFreqAware;
    store_ = PipelinedStore::Create(config_, device_.get()).ValueOrDie();
  }

  // `batches` rounds of: a fixed hot set (ids [0, hot)) plus a cold scan
  // segment — the classic LRU-thrash workload. cold_universe == 0 makes
  // cold ids never repeat (pure creation churn); a nonzero universe cycles
  // through it, so revisits reload PMem-resident victims of earlier
  // evictions and exercise the admission filter.
  void RunSkewedScan(PipelinedStore* store, uint64_t batches, size_t hot,
                     size_t cold_per_batch, uint64_t cold_universe = 0) {
    uint64_t cold_cursor = 0;
    for (uint64_t batch = 1; batch <= batches; ++batch) {
      std::vector<EntryId> keys(hot);
      std::iota(keys.begin(), keys.end(), 0);
      for (size_t i = 0; i < cold_per_batch; ++i, ++cold_cursor) {
        keys.push_back((1 << 20) + (cold_universe == 0
                                        ? cold_cursor
                                        : cold_cursor % cold_universe));
      }
      std::vector<float> w(keys.size() * kDim);
      ASSERT_TRUE(
          store->Pull(keys.data(), keys.size(), batch, w.data()).ok());
      store->FinishPullPhase(batch);
      std::vector<float> grads(keys.size() * kDim, 0.1f);
      ASSERT_TRUE(
          store->Push(keys.data(), keys.size(), grads.data(), batch).ok());
    }
    store->WaitMaintenance(batches);
  }
};

TEST_F(FreqPolicyTest, HotSetSurvivesColdScans) {
  const size_t capacity = store_->CacheCapacityEntries();
  const size_t hot = capacity / 4;
  RunSkewedScan(store_.get(), /*batches=*/24, hot, /*cold_per_batch=*/capacity,
                /*cold_universe=*/2 * capacity);

  // The hot head is still DRAM-resident despite 24 full-capacity scans.
  for (EntryId key = 0; key < hot; ++key) {
    EXPECT_TRUE(store_->IsDramCached(key)) << "hot key " << key << " evicted";
  }
  EXPECT_GT(store_->PinnedEntries(), 0u);
  EXPECT_GT(store_->stats().admission_rejects.load(), 0u);
  EXPECT_LE(store_->CachedEntries(), capacity);
}

TEST_F(FreqPolicyTest, BeatsPlainLruOnSkewedScan) {
  const size_t capacity = store_->CacheCapacityEntries();
  const size_t hot = capacity / 4;
  RunSkewedScan(store_.get(), 24, hot, capacity, 2 * capacity);
  const double freq_rate = store_->stats().HitRate();

  auto lru_device = MakeDevice();
  StoreConfig lru_config = SmallConfig();  // cache_policy defaults to kLru
  auto lru_store =
      PipelinedStore::Create(lru_config, lru_device.get()).ValueOrDie();
  RunSkewedScan(lru_store.get(), 24, hot, capacity, 2 * capacity);
  const double lru_rate = lru_store->stats().HitRate();

  // Same workload, same capacity: the admission filter + pinning must keep
  // the hot head cached while plain LRU thrashes it on every scan.
  EXPECT_GT(freq_rate, lru_rate + 0.05)
      << "freq=" << freq_rate << " lru=" << lru_rate;
}

TEST_F(FreqPolicyTest, EvictedEntriesStillReadBack) {
  // Correctness under the new policy: every key keeps its value whether it
  // was pinned, cached, rejected at admission, or evicted.
  const size_t capacity = store_->CacheCapacityEntries();
  const size_t hot = capacity / 4;
  RunSkewedScan(store_.get(), 8, hot, capacity);
  EXPECT_EQ(store_->EntryCount(), hot + 8 * capacity);
  for (EntryId key = 0; key < hot; ++key) {
    std::vector<float> init(kDim);
    config_.initializer.Fill(key, init.data(), kDim);
    auto got = store_->Peek(key).ValueOrDie();
    for (uint32_t d = 0; d < kDim; ++d) {
      // 8 pushes of grad 0.1 at lr 0.5.
      EXPECT_NEAR(got[d], init[d] - 8 * 0.5f * 0.1f, 1e-5) << key;
    }
  }
  const EntryId cold_probe = (1 << 20) + 3;
  std::vector<float> init(kDim);
  config_.initializer.Fill(cold_probe, init.data(), kDim);
  auto got = store_->Peek(cold_probe).ValueOrDie();
  for (uint32_t d = 0; d < kDim; ++d) {
    EXPECT_NEAR(got[d], init[d] - 0.5f * 0.1f, 1e-5);
  }
}

TEST_F(FreqPolicyTest, RecoveryResetsPinsAndFrequencies) {
  const size_t capacity = store_->CacheCapacityEntries();
  RunSkewedScan(store_.get(), 16, capacity / 4, capacity);
  ASSERT_GT(store_->PinnedEntries(), 0u);

  device_->SimulateCrash();
  ASSERT_TRUE(store_->RecoverFromCrash().ok());
  EXPECT_EQ(store_->PinnedEntries(), 0u);

  // Training resumes and re-pins from fresh statistics.
  RunSkewedScan(store_.get(), 16, capacity / 4, capacity);
  EXPECT_GT(store_->PinnedEntries(), 0u);
}

TEST_F(FreqPolicyTest, CheckpointsPublishUnderFreqEviction) {
  // The checkpoint ack barrier rides on LRU-order == version-order; the
  // windowed victim scan removes entries mid-list but never reorders, so
  // publication must still happen under eviction pressure.
  const size_t capacity = store_->CacheCapacityEntries();
  RunSkewedScan(store_.get(), 4, capacity / 4, capacity);
  ASSERT_TRUE(store_->RequestCheckpoint(4).ok());
  ASSERT_TRUE(store_->DrainCheckpoints().ok());
  EXPECT_EQ(store_->PublishedCheckpoint(), 4u);
}

TEST_F(PipelinedStoreTest, CheckpointRequestIsLightweight) {
  std::vector<EntryId> keys = {1, 2, 3};
  RunBatch(1, keys, 0.1f);
  const uint64_t flushes_before = store_->stats().flushes.load();
  ASSERT_TRUE(store_->RequestCheckpoint(1).ok());
  // Only the request is enqueued: no data movement yet.
  EXPECT_EQ(store_->stats().flushes.load(), flushes_before);
  EXPECT_EQ(store_->PublishedCheckpoint(), 0u);
}

TEST_F(PipelinedStoreTest, CheckpointPublishesViaEvictionPressure) {
  const size_t capacity = store_->CacheCapacityEntries();
  std::vector<EntryId> hot(capacity / 2);
  std::iota(hot.begin(), hot.end(), 0);
  RunBatch(1, hot, 0.1f);
  ASSERT_TRUE(store_->RequestCheckpoint(1).ok());

  // Subsequent batches over fresh keys force eviction; the victims carry
  // versions > 1 eventually, publishing checkpoint 1.
  EntryId next = 1000;
  for (uint64_t batch = 2; batch <= 6; ++batch) {
    std::vector<EntryId> keys(capacity);
    std::iota(keys.begin(), keys.end(), next);
    next += capacity;
    RunBatch(batch, keys, 0.1f);
  }
  store_->WaitMaintenance(6);
  EXPECT_EQ(store_->PublishedCheckpoint(), 1u);
}

TEST_F(PipelinedStoreTest, DrainCheckpointsPublishesAll) {
  std::vector<EntryId> keys = {1, 2, 3};
  RunBatch(1, keys, 0.1f);
  ASSERT_TRUE(store_->RequestCheckpoint(1).ok());
  RunBatch(2, keys, 0.1f);
  ASSERT_TRUE(store_->RequestCheckpoint(2).ok());
  ASSERT_TRUE(store_->DrainCheckpoints().ok());
  EXPECT_EQ(store_->PublishedCheckpoint(), 2u);
}

TEST_F(PipelinedStoreTest, CheckpointIdsMustIncrease) {
  std::vector<EntryId> keys = {1};
  RunBatch(1, keys, 0.1f);
  RunBatch(2, keys, 0.1f);
  ASSERT_TRUE(store_->RequestCheckpoint(2).ok());
  EXPECT_FALSE(store_->RequestCheckpoint(2).ok());
  EXPECT_FALSE(store_->RequestCheckpoint(1).ok());
}

TEST_F(PipelinedStoreTest, StaleCheckpointRequestRejected) {
  // A checkpoint of batch 1's state requested after batch 3 has trained
  // would publish an inconsistent snapshot (batch 1 state may already be
  // overwritten in place): the store must refuse.
  std::vector<EntryId> keys = {1, 2};
  RunBatch(1, keys, 0.1f);
  RunBatch(2, keys, 0.1f);
  RunBatch(3, keys, 0.1f);
  auto status = store_->RequestCheckpoint(1);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // The current batch is still checkpointable.
  EXPECT_TRUE(store_->RequestCheckpoint(3).ok());
  ASSERT_TRUE(store_->DrainCheckpoints().ok());
  EXPECT_EQ(store_->PublishedCheckpoint(), 3u);
}

TEST_F(PipelinedStoreTest, RecoveryRestoresExactCheckpointState) {
  std::vector<EntryId> keys = {5, 6, 7, 8};
  RunBatch(1, keys, 0.1f);
  RunBatch(2, keys, 0.2f);
  ASSERT_TRUE(store_->RequestCheckpoint(2).ok());
  ASSERT_TRUE(store_->DrainCheckpoints().ok());

  std::map<EntryId, std::vector<float>> expected;
  for (EntryId key : keys) expected[key] = store_->Peek(key).ValueOrDie();

  // Post-checkpoint batches that must vanish.
  RunBatch(3, keys, 0.7f);
  RunBatch(4, keys, -0.3f);

  device_->SimulateCrash();
  ASSERT_TRUE(store_->RecoverFromCrash().ok());
  EXPECT_EQ(store_->PublishedCheckpoint(), 2u);
  EXPECT_EQ(store_->EntryCount(), keys.size());
  for (EntryId key : keys) {
    auto got = store_->Peek(key).ValueOrDie();
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_NEAR(got[d], expected[key][d], 1e-6) << key;
    }
  }
}

TEST_F(PipelinedStoreTest, RecoveryWithoutCheckpointYieldsEmptyModel) {
  std::vector<EntryId> keys = {1, 2, 3};
  RunBatch(1, keys, 0.1f);
  device_->SimulateCrash();
  ASSERT_TRUE(store_->RecoverFromCrash().ok());
  EXPECT_EQ(store_->PublishedCheckpoint(), 0u);
  EXPECT_EQ(store_->EntryCount(), 0u);
}

TEST_F(PipelinedStoreTest, EntriesCreatedAfterCheckpointVanishOnRecovery) {
  std::vector<EntryId> old_keys = {1, 2};
  RunBatch(1, old_keys, 0.1f);
  ASSERT_TRUE(store_->RequestCheckpoint(1).ok());
  ASSERT_TRUE(store_->DrainCheckpoints().ok());

  std::vector<EntryId> new_keys = {100, 200};
  RunBatch(2, new_keys, 0.1f);

  device_->SimulateCrash();
  ASSERT_TRUE(store_->RecoverFromCrash().ok());
  EXPECT_EQ(store_->EntryCount(), 2u);
  EXPECT_TRUE(store_->Peek(1).ok());
  EXPECT_FALSE(store_->Peek(100).ok());
}

TEST_F(PipelinedStoreTest, TrainingContinuesAfterRecovery) {
  std::vector<EntryId> keys = {1, 2, 3};
  RunBatch(1, keys, 0.1f);
  ASSERT_TRUE(store_->RequestCheckpoint(1).ok());
  ASSERT_TRUE(store_->DrainCheckpoints().ok());
  device_->SimulateCrash();
  ASSERT_TRUE(store_->RecoverFromCrash().ok());

  // Resume from batch 2.
  RunBatch(2, keys, 0.2f);
  ASSERT_TRUE(store_->RequestCheckpoint(2).ok());
  ASSERT_TRUE(store_->DrainCheckpoints().ok());
  EXPECT_EQ(store_->PublishedCheckpoint(), 2u);
}

TEST_F(PipelinedStoreTest, SpaceReclaimedAfterPublish) {
  // Flushing the same keys across many checkpoints must not leak PMem:
  // superseded records are freed when a newer checkpoint publishes.
  std::vector<EntryId> keys = {1, 2, 3, 4};
  RunBatch(1, keys, 0.1f);
  ASSERT_TRUE(store_->RequestCheckpoint(1).ok());
  ASSERT_TRUE(store_->DrainCheckpoints().ok());
  const uint64_t baseline = store_->pool()->AllocatedBytes();

  for (uint64_t batch = 2; batch <= 12; ++batch) {
    RunBatch(batch, keys, 0.1f);
    ASSERT_TRUE(store_->RequestCheckpoint(batch).ok());
    ASSERT_TRUE(store_->DrainCheckpoints().ok());
  }
  // At most a bounded number of live records per key (current + one
  // deferred), never 11 generations.
  EXPECT_LE(store_->pool()->AllocatedBytes(), baseline * 3);
}

// ---------- Lock-striped sharding ----------

TEST(ShardedPipelinedStoreTest, ShardCountIsConfigurableAndClamped) {
  auto device = MakeDevice();
  StoreConfig config = SmallConfig();
  config.store_shards = 4;
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  EXPECT_EQ(store->NumShards(), 4u);

  auto device1 = MakeDevice();
  config.store_shards = 0;  // clamped to the single-lock layout
  auto single = PipelinedStore::Create(config, device1.get()).ValueOrDie();
  EXPECT_EQ(single->NumShards(), 1u);

  // Per-shard capacity slices must sum to exactly the budget.
  EntryLayout layout(kDim, 0);
  EXPECT_EQ(store->CacheCapacityEntries(),
            config.cache_bytes / layout.record_bytes());
}

TEST(ShardedPipelinedStoreTest, ShardedAndSingleShardStoresAgree) {
  StoreConfig sharded_config = SmallConfig();
  sharded_config.store_shards = 16;
  sharded_config.maintainer_threads = 4;
  StoreConfig single_config = SmallConfig();
  single_config.store_shards = 1;

  auto sharded_device = MakeDevice();
  auto single_device = MakeDevice();
  auto sharded =
      PipelinedStore::Create(sharded_config, sharded_device.get())
          .ValueOrDie();
  auto single =
      PipelinedStore::Create(single_config, single_device.get()).ValueOrDie();

  const size_t capacity = sharded->CacheCapacityEntries();
  std::vector<float> w;
  std::vector<float> grads;
  for (uint64_t batch = 1; batch <= 8; ++batch) {
    // Overlapping hot set + rotating cold slice, sized to force evictions.
    std::vector<EntryId> keys;
    for (EntryId k = 0; k < 16; ++k) keys.push_back(k);
    for (size_t j = 0; j < capacity; ++j) {
      keys.push_back(100 + batch * 37 + j);
    }
    w.resize(keys.size() * kDim);
    grads.assign(keys.size() * kDim, 0.25f);
    for (PipelinedStore* store : {sharded.get(), single.get()}) {
      ASSERT_TRUE(
          store->Pull(keys.data(), keys.size(), batch, w.data()).ok());
      store->FinishPullPhase(batch);
      ASSERT_TRUE(
          store->Push(keys.data(), keys.size(), grads.data(), batch).ok());
    }
    if (batch == 4) {
      ASSERT_TRUE(sharded->RequestCheckpoint(batch).ok());
      ASSERT_TRUE(single->RequestCheckpoint(batch).ok());
    }
  }
  sharded->WaitMaintenance(8);
  single->WaitMaintenance(8);

  ASSERT_EQ(sharded->EntryCount(), single->EntryCount());
  for (EntryId k = 0; k < 16; ++k) {
    const auto got = sharded->Peek(k).ValueOrDie();
    const auto want = single->Peek(k).ValueOrDie();
    for (uint32_t d = 0; d < kDim; ++d) EXPECT_EQ(got[d], want[d]) << k;
  }
}

/// Keys that hash into `shard`, starting the probe at `probe`.
std::vector<EntryId> KeysInShard(const PipelinedStore& store, size_t shard,
                                 size_t count, EntryId probe) {
  std::vector<EntryId> keys;
  while (keys.size() < count) {
    if (store.ShardOfKey(probe) == shard) keys.push_back(probe);
    ++probe;
  }
  return keys;
}

TEST(ShardedPipelinedStoreTest, CheckpointBarrierWaitsForEveryShard) {
  auto device = MakeDevice();
  StoreConfig config = SmallConfig();
  config.store_shards = 4;
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  const size_t per_shard = store->CacheCapacityEntries() / 4;

  auto run_batch = [&](uint64_t batch, const std::vector<EntryId>& keys) {
    std::vector<float> w(keys.size() * kDim);
    ASSERT_TRUE(
        store->Pull(keys.data(), keys.size(), batch, w.data()).ok());
    store->FinishPullPhase(batch);
    std::vector<float> grads(keys.size() * kDim, 0.1f);
    ASSERT_TRUE(
        store->Push(keys.data(), keys.size(), grads.data(), batch).ok());
  };

  // Batch 1 leaves dirty version-1 state in shards 0 and 1.
  const auto shard0_hot = KeysInShard(*store, 0, 4, 0);
  const auto shard1_hot = KeysInShard(*store, 1, 4, 0);
  std::vector<EntryId> both(shard0_hot);
  both.insert(both.end(), shard1_hot.begin(), shard1_hot.end());
  run_batch(1, both);
  ASSERT_TRUE(store->RequestCheckpoint(1).ok());

  // Churning only shard 0 makes *it* durable for checkpoint 1, but the
  // publish barrier must keep waiting on shard 1's stale dirty entries.
  EntryId probe = 1000;
  for (uint64_t batch = 2; batch <= 5; ++batch) {
    const auto churn = KeysInShard(*store, 0, per_shard * 2, probe);
    probe = churn.back() + 1;
    run_batch(batch, churn);
  }
  store->WaitMaintenance(5);
  EXPECT_EQ(store->PublishedCheckpoint(), 0u);

  // Churning shard 1 flushes its version-1 state; the last shard to
  // acknowledge publishes the checkpoint.
  for (uint64_t batch = 6; batch <= 9; ++batch) {
    const auto churn = KeysInShard(*store, 1, per_shard * 2, probe);
    probe = churn.back() + 1;
    run_batch(batch, churn);
  }
  store->WaitMaintenance(9);
  EXPECT_EQ(store->PublishedCheckpoint(), 1u);

  // The published state must round-trip through recovery.
  device->SimulateCrash();
  ASSERT_TRUE(store->RecoverFromCrash().ok());
  for (EntryId key : both) {
    std::vector<float> init(kDim);
    config.initializer.Fill(key, init.data(), kDim);
    const auto got = store->Peek(key).ValueOrDie();
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_NEAR(got[d], init[d] - 0.5f * 0.1f, 1e-5) << key;
    }
  }
}

// Property sweep: random workloads with checkpoints and adversarial
// crashes must always recover the exact checkpoint state.
class PipelinedCrashPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PipelinedCrashPropertyTest, BatchAtomicityUnderAdversarialCrash) {
  auto device = MakeDevice({.size_bytes = 32 << 20, .fidelity = CrashFidelity::kAdversarial});
  StoreConfig config = SmallConfig();
  config.cache_bytes = 4 * 1024;  // heavy eviction traffic
  auto store = PipelinedStore::Create(config, device.get()).ValueOrDie();
  Random rng(GetParam());

  // Reference model mirrors every applied update.
  std::map<EntryId, std::vector<float>> model;
  std::map<EntryId, std::vector<float>> at_checkpoint;
  uint64_t checkpoint_batch = 0;

  const uint64_t total_batches = 30;
  const uint64_t crash_batch = 10 + rng.Uniform(15);
  for (uint64_t batch = 1; batch <= total_batches; ++batch) {
    std::vector<EntryId> keys;
    const size_t nkeys = 4 + rng.Uniform(12);
    for (size_t i = 0; i < nkeys; ++i) keys.push_back(rng.Uniform(200));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    std::vector<float> w(keys.size() * kDim);
    ASSERT_TRUE(store->Pull(keys.data(), keys.size(), batch, w.data()).ok());
    store->FinishPullPhase(batch);
    std::vector<float> grads(keys.size() * kDim);
    for (auto& g : grads) g = rng.UniformFloat(-1.0f, 1.0f);
    ASSERT_TRUE(
        store->Push(keys.data(), keys.size(), grads.data(), batch).ok());

    for (size_t i = 0; i < keys.size(); ++i) {
      auto& ref = model[keys[i]];
      if (ref.empty()) {
        ref.resize(kDim);
        config.initializer.Fill(keys[i], ref.data(), kDim);
      }
      for (uint32_t d = 0; d < kDim; ++d) {
        ref[d] -= config.optimizer.learning_rate * grads[i * kDim + d];
      }
    }

    if (batch % 7 == 0) {
      ASSERT_TRUE(store->RequestCheckpoint(batch).ok());
      ASSERT_TRUE(store->DrainCheckpoints().ok());
      at_checkpoint = model;
      checkpoint_batch = batch;
    }
    if (batch == crash_batch) break;
  }

  device->SimulateCrash();
  ASSERT_TRUE(store->RecoverFromCrash().ok());
  EXPECT_EQ(store->PublishedCheckpoint(), checkpoint_batch);
  EXPECT_EQ(store->EntryCount(), at_checkpoint.size());
  for (const auto& [key, ref] : at_checkpoint) {
    auto got = store->Peek(key);
    ASSERT_TRUE(got.ok()) << "lost key " << key;
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_NEAR(got.value()[d], ref[d], 1e-5)
          << "key " << key << " dim " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedCrashPropertyTest,
                         ::testing::Values(1, 7, 21, 42, 1234, 777, 31337,
                                           2026));

}  // namespace
}  // namespace oe::storage

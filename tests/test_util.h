// Shared fixtures for the test binaries: the small-store config and
// simulated-device construction that storage_test, ckpt_test, backup_test,
// restart_test and crash_sim_test previously each re-declared, plus the
// OE_TEST_SEED hook that makes every randomized test reproducible.
#ifndef OE_TESTS_TEST_UTIL_H_
#define OE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "pmem/device.h"
#include "storage/embedding_store.h"

namespace oe::test {

inline constexpr uint32_t kSmallDim = 8;

// Tiny training config: dim 8, plain SGD (no optimizer slots), and a cache
// small enough that evictions (and therefore PMem write-backs) happen
// constantly instead of only at checkpoints.
inline storage::StoreConfig SmallConfig(uint32_t dim = kSmallDim) {
  storage::StoreConfig config;
  config.dim = dim;
  config.optimizer.kind = storage::OptimizerKind::kSgd;
  config.optimizer.learning_rate = 0.5f;
  config.cache_bytes = 8 * 1024;
  return config;
}

struct TestDeviceOptions {
  uint64_t size_bytes = 16 << 20;
  pmem::DeviceKind kind = pmem::DeviceKind::kPmem;
  pmem::CrashFidelity fidelity = pmem::CrashFidelity::kStrict;
  std::string backing_file;  // empty = anonymous mapping
};

inline std::unique_ptr<pmem::PmemDevice> MakeDevice(
    TestDeviceOptions test_options = {}) {
  pmem::PmemDeviceOptions options;
  options.size_bytes = test_options.size_bytes;
  options.kind = test_options.kind;
  options.crash_fidelity = test_options.fidelity;
  options.backing_file = test_options.backing_file;
  return pmem::PmemDevice::Create(options).ValueOrDie();
}

// Seed for randomized tests: OE_TEST_SEED if set (rerun a failure with
// `OE_TEST_SEED=<seed> ctest ...`), otherwise `fallback`. Tests must report
// the seed they used on failure, e.g. via SCOPED_TRACE.
inline uint64_t TestSeed(uint64_t fallback) {
  if (const char* env = std::getenv("OE_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return parsed;
  }
  return fallback;
}

}  // namespace oe::test

#endif  // OE_TESTS_TEST_UTIL_H_

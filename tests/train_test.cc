#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "train/deepfm.h"
#include "train/mlp.h"
#include "train/sync_trainer.h"

namespace oe::train {
namespace {

TEST(MlpTest, ForwardShapesAndDeterminism) {
  Mlp mlp({4, 8, 2}, 0.1f, 3);
  EXPECT_EQ(mlp.input_dim(), 4u);
  EXPECT_EQ(mlp.output_dim(), 2u);
  float x[4] = {1, -1, 0.5f, 2};
  float out_a[2], out_b[2];
  Mlp::Scratch scratch;
  mlp.Forward(x, out_a, &scratch);
  mlp.Forward(x, out_b, &scratch);
  EXPECT_EQ(out_a[0], out_b[0]);
  EXPECT_EQ(out_a[1], out_b[1]);
}

TEST(MlpTest, GradientMatchesFiniteDifference) {
  Mlp mlp({3, 5, 1}, 0.0f, 7);
  float x[3] = {0.3f, -0.7f, 1.1f};
  Mlp::Scratch scratch;
  float out = 0;
  mlp.Forward(x, &out, &scratch);
  // dL/dout = 1 -> x_grad = d(out)/d(x).
  float one = 1.0f;
  float x_grad[3];
  mlp.BackwardAccumulate(x, &one, &scratch, x_grad);

  for (int i = 0; i < 3; ++i) {
    const float eps = 1e-3f;
    float x_plus[3] = {x[0], x[1], x[2]};
    float x_minus[3] = {x[0], x[1], x[2]};
    x_plus[i] += eps;
    x_minus[i] -= eps;
    float out_plus = 0, out_minus = 0;
    mlp.Forward(x_plus, &out_plus, &scratch);
    mlp.Forward(x_minus, &out_minus, &scratch);
    const float numeric = (out_plus - out_minus) / (2 * eps);
    EXPECT_NEAR(x_grad[i], numeric, 1e-2f) << i;
  }
}

TEST(MlpTest, LearnsLinearFunction) {
  // y = 2*x0 - x1; SGD should reduce squared error substantially.
  Mlp mlp({2, 16, 1}, 0.05f, 11);
  Random rng(13);
  Mlp::Scratch scratch;
  double first_loss = 0, last_loss = 0;
  const int steps = 3000;
  for (int step = 0; step < steps; ++step) {
    float x[2] = {rng.UniformFloat(-1, 1), rng.UniformFloat(-1, 1)};
    const float target = 2.0f * x[0] - x[1];
    float out = 0;
    mlp.Forward(x, &out, &scratch);
    const float err = out - target;
    const float dloss = 2 * err;
    mlp.BackwardAccumulate(x, &dloss, &scratch, nullptr);
    mlp.ApplyGradients(1);
    if (step < 100) first_loss += err * err;
    if (step >= steps - 100) last_loss += err * err;
  }
  EXPECT_LT(last_loss, first_loss * 0.2);
}

TEST(MlpTest, SaveLoadRoundTrip) {
  Mlp a({3, 4, 2}, 0.1f, 1);
  Mlp b({3, 4, 2}, 0.1f, 2);
  ASSERT_TRUE(b.LoadParameters(a.SaveParameters()).ok());
  float x[3] = {0.1f, 0.2f, 0.3f};
  float out_a[2], out_b[2];
  Mlp::Scratch scratch;
  a.Forward(x, out_a, &scratch);
  b.Forward(x, out_b, &scratch);
  EXPECT_EQ(out_a[0], out_b[0]);
  EXPECT_EQ(out_a[1], out_b[1]);
  EXPECT_FALSE(b.LoadParameters({1.0f}).ok());
}

TEST(MetricsTest, LogLossBounds) {
  EXPECT_NEAR(LogLoss(1.0f, 0.5f), std::log(2.0), 1e-6);
  EXPECT_LT(LogLoss(1.0f, 0.99f), LogLoss(1.0f, 0.5f));
  EXPECT_GT(LogLoss(0.0f, 0.99f), LogLoss(0.0f, 0.5f));
  EXPECT_TRUE(std::isfinite(LogLoss(1.0f, 0.0f)));  // clamped
}

TEST(MetricsTest, AucPerfectAndRandom) {
  std::vector<float> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(ComputeAuc(labels, {0.1f, 0.2f, 0.8f, 0.9f}), 1.0);
  EXPECT_DOUBLE_EQ(ComputeAuc(labels, {0.9f, 0.8f, 0.2f, 0.1f}), 0.0);
  EXPECT_DOUBLE_EQ(ComputeAuc(labels, {0.5f, 0.5f, 0.5f, 0.5f}), 0.5);
  EXPECT_DOUBLE_EQ(ComputeAuc({1, 1}, {0.3f, 0.4f}), 0.5);  // one class
}

TEST(DeepFmTest, GradientsMatchFiniteDifference) {
  DeepFmConfig config;
  config.num_fields = 3;
  config.dense_dim = 2;
  config.embed_dim = 4;
  config.hidden = {8};
  config.dense_learning_rate = 0.0f;
  DeepFm model(config);

  workload::CtrExample example;
  example.label = 1.0f;
  example.dense = {0.5f, -0.5f};
  example.cat_keys = {1, 2, 3};
  std::vector<workload::CtrExample> batch = {example};

  Random rng(17);
  const size_t n = 3 * 4;
  std::vector<float> embeddings(n);
  for (auto& e : embeddings) e = rng.UniformFloat(-0.5f, 0.5f);

  std::vector<float> grads(n);
  auto result = model.ForwardBackward(batch, embeddings.data(), grads.data());
  ASSERT_EQ(result.predictions.size(), 1u);

  for (size_t i = 0; i < n; ++i) {
    const float eps = 1e-3f;
    std::vector<float> plus = embeddings, minus = embeddings;
    plus[i] += eps;
    minus[i] -= eps;
    auto p_plus = model.Predict(batch, plus.data());
    auto p_minus = model.Predict(batch, minus.data());
    const double loss_plus = LogLoss(1.0f, p_plus[0]);
    const double loss_minus = LogLoss(1.0f, p_minus[0]);
    const double numeric = (loss_plus - loss_minus) / (2 * eps);
    EXPECT_NEAR(grads[i], numeric, 5e-2) << "embedding index " << i;
  }
}

TEST(DeepFmTest, DenseSaveLoadRoundTrip) {
  DeepFmConfig config;
  config.num_fields = 2;
  config.dense_dim = 2;
  config.embed_dim = 2;
  config.hidden = {4};
  DeepFm a(config);
  DeepFm b(config);

  workload::CtrExample example;
  example.label = 1.0f;
  example.dense = {1.0f, 2.0f};
  example.cat_keys = {0, 1};
  std::vector<workload::CtrExample> batch = {example};
  std::vector<float> embeddings = {0.1f, 0.2f, 0.3f, 0.4f};

  ASSERT_TRUE(b.LoadDense(a.SaveDense()).ok());
  auto pa = a.Predict(batch, embeddings.data());
  auto pb = b.Predict(batch, embeddings.data());
  EXPECT_EQ(pa[0], pb[0]);
}

// ---------- End-to-end training over the PS cluster ----------

struct TrainSetup {
  std::unique_ptr<ps::PsCluster> cluster;
  std::unique_ptr<SyncTrainer> trainer;
  workload::CriteoSynthConfig data_config;
};

TrainSetup MakeTrainSetup(storage::StoreKind kind, int workers,
                          uint64_t checkpoint_interval) {
  TrainSetup setup;
  ps::ClusterOptions options;
  options.num_nodes = 2;
  options.kind = kind;
  options.store.dim = 8;
  options.store.optimizer.kind = storage::OptimizerKind::kAdaGrad;
  options.store.optimizer.learning_rate = 0.05f;
  options.store.cache_bytes = 256 * 1024;
  options.pmem_bytes_per_node = 64ULL << 20;
  options.log_bytes_per_node = 64ULL << 20;
  options.crash_fidelity = pmem::CrashFidelity::kStrict;
  setup.cluster = ps::PsCluster::Create(options).ValueOrDie();

  setup.data_config.base_cardinality = 500;
  setup.data_config.categorical_fields = 8;
  setup.data_config.dense_fields = 4;

  TrainerConfig trainer_config;
  trainer_config.workers = workers;
  trainer_config.batch_size = 64;
  trainer_config.checkpoint_interval = checkpoint_interval;
  trainer_config.model.num_fields = 8;
  trainer_config.model.dense_dim = 4;
  trainer_config.model.embed_dim = 8;
  trainer_config.model.hidden = {16};
  trainer_config.model.dense_learning_rate = 0.02f;
  setup.trainer = std::make_unique<SyncTrainer>(
      setup.cluster.get(), setup.data_config, trainer_config);
  return setup;
}

TEST(SyncTrainerTest, LossDecreasesOnPlantedSignal) {
  auto setup = MakeTrainSetup(storage::StoreKind::kPipelined, 2, 0);
  ASSERT_TRUE(setup.trainer->TrainBatches(5).ok());
  const double early = setup.trainer->progress().mean_logloss;
  ASSERT_TRUE(setup.trainer->TrainBatches(60).ok());
  const auto progress = setup.trainer->progress();
  EXPECT_LT(progress.mean_logloss, early);
  EXPECT_GT(progress.auc, 0.6);  // learned real signal, not noise
  EXPECT_EQ(progress.batches_done, 65u);
}

TEST(SyncTrainerTest, AllEnginesTrainEquivalently) {
  // The storage engine must not change the math: identical data + seeds
  // on DRAM-PS and PMem-OE give closely matching loss curves.
  auto dram = MakeTrainSetup(storage::StoreKind::kDram, 2, 0);
  auto pmem = MakeTrainSetup(storage::StoreKind::kPipelined, 2, 0);
  ASSERT_TRUE(dram.trainer->TrainBatches(30).ok());
  ASSERT_TRUE(pmem.trainer->TrainBatches(30).ok());
  EXPECT_NEAR(dram.trainer->progress().mean_logloss,
              pmem.trainer->progress().mean_logloss, 0.05);
}

TEST(SyncTrainerTest, CheckpointRecoveryResumesTraining) {
  auto setup = MakeTrainSetup(storage::StoreKind::kPipelined, 2, 10);
  ASSERT_TRUE(setup.trainer->TrainBatches(25).ok());
  // Make the batch-20 checkpoint durable, then crash.
  ASSERT_TRUE(setup.cluster->client().DrainCheckpoints().ok());
  setup.cluster->SimulateCrashAll();
  ASSERT_TRUE(setup.trainer->RecoverAfterCrash().ok());
  EXPECT_EQ(setup.trainer->next_batch(), 21u);

  // Training continues from the checkpoint without errors.
  ASSERT_TRUE(setup.trainer->TrainBatches(10).ok());
  EXPECT_GT(setup.trainer->progress().auc, 0.5);
}

TEST(SyncTrainerTest, RecoveryWithoutCheckpointRestarts) {
  auto setup = MakeTrainSetup(storage::StoreKind::kPipelined, 2, 0);
  ASSERT_TRUE(setup.trainer->TrainBatches(5).ok());
  setup.cluster->SimulateCrashAll();
  ASSERT_TRUE(setup.trainer->RecoverAfterCrash().ok());
  EXPECT_EQ(setup.trainer->next_batch(), 1u);
  ASSERT_TRUE(setup.trainer->TrainBatches(3).ok());
}

TEST(SyncTrainerTest, FourWorkersMatchTwoWorkersRoughly) {
  auto two = MakeTrainSetup(storage::StoreKind::kPipelined, 2, 0);
  auto four = MakeTrainSetup(storage::StoreKind::kPipelined, 4, 0);
  ASSERT_TRUE(two.trainer->TrainBatches(20).ok());
  ASSERT_TRUE(four.trainer->TrainBatches(10).ok());  // same total examples
  EXPECT_NEAR(two.trainer->progress().mean_logloss,
              four.trainer->progress().mean_logloss, 0.1);
}

}  // namespace
}  // namespace oe::train

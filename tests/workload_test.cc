#include <gtest/gtest.h>

#include <set>

#include "workload/criteo.h"
#include "workload/open_loop.h"
#include "workload/skew.h"
#include "workload/trace.h"

namespace oe::workload {
namespace {

TEST(SkewedKeySamplerTest, OriginalPresetMatchesTableTwo) {
  SkewedKeySampler sampler(1 << 20, SkewPreset::kOriginal);
  // Closed-form tier masses reproduce the paper's Table II.
  EXPECT_NEAR(sampler.MassOfTopFraction(0.0005), 0.857, 0.01);
  EXPECT_NEAR(sampler.MassOfTopFraction(0.001), 0.895, 0.01);
  EXPECT_NEAR(sampler.MassOfTopFraction(0.01), 0.957, 0.01);
}

TEST(SkewedKeySamplerTest, EmpiricalSamplesMatchTableTwo) {
  const uint64_t num_keys = 200000;
  SkewedKeySampler sampler(num_keys, SkewPreset::kOriginal);
  Random rng(3);
  TraceAnalyzer analyzer;
  for (int i = 0; i < 400000; ++i) analyzer.Record(sampler.Sample(&rng));
  // Hottest 0.05% of the full keyspace = 100 keys. Use the accessed-key
  // basis like the paper: accessed keys are dominated by hot ranks.
  const double top_005 =
      analyzer.TopFractionShare(100.0 / analyzer.distinct_keys());
  EXPECT_NEAR(top_005, 0.857, 0.05);
}

TEST(SkewedKeySamplerTest, PresetsOrderBySkew) {
  const uint64_t num_keys = 1 << 20;
  SkewedKeySampler original(num_keys, SkewPreset::kOriginal);
  SkewedKeySampler more(num_keys, SkewPreset::kMoreSkew);
  SkewedKeySampler less(num_keys, SkewPreset::kLessSkew);
  EXPECT_GT(more.MassOfTopFraction(0.001), original.MassOfTopFraction(0.001));
  EXPECT_GT(original.MassOfTopFraction(0.001), less.MassOfTopFraction(0.001));
}

TEST(SkewedKeySamplerTest, SamplesWithinRange) {
  SkewedKeySampler sampler(1000, SkewPreset::kOriginal);
  Random rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(sampler.Sample(&rng), 1000u);
  }
}

// Regression: with a small universe the per-tier widths round to zero-width
// ranges whose leftover mass used to make Sample() return ids >= num_keys
// (and ids far beyond the hot ranks far too often). Every preset must stay
// in range and conserve mass even when num_keys is tiny.
TEST(SkewedKeySamplerTest, SmallUniverseStaysInRange) {
  const SkewPreset presets[] = {SkewPreset::kLessSkew, SkewPreset::kOriginal,
                                SkewPreset::kMoreSkew};
  const uint64_t universes[] = {1, 3, 10, 100, 1500};
  for (SkewPreset preset : presets) {
    for (uint64_t num_keys : universes) {
      SkewedKeySampler sampler(num_keys, preset);
      EXPECT_NEAR(sampler.MassOfTopFraction(1.0), 1.0, 1e-9)
          << "preset " << static_cast<int>(preset) << " keys " << num_keys;
      Random rng(17 + num_keys);
      for (int i = 0; i < 20000; ++i) {
        EXPECT_LT(sampler.Sample(&rng), num_keys)
            << "preset " << static_cast<int>(preset) << " keys " << num_keys;
      }
    }
  }
}

// The folded tiers still prefer low ranks: in a 100-key universe the top
// 10 ids must dominate the samples under the original preset.
TEST(SkewedKeySamplerTest, SmallUniverseKeepsSkew) {
  SkewedKeySampler sampler(100, SkewPreset::kOriginal);
  Random rng(23);
  int head_hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (sampler.Sample(&rng) < 10) ++head_hits;
  }
  EXPECT_GT(static_cast<double>(head_hits) / n, 0.5);
}

TEST(SkewedKeySamplerTest, ColdTailIsReached) {
  const uint64_t num_keys = 10000;
  SkewedKeySampler sampler(num_keys, SkewPreset::kOriginal);
  Random rng(2);
  uint64_t tail_hits = 0;
  for (int i = 0; i < 200000; ++i) {
    if (sampler.Sample(&rng) > num_keys / 10) ++tail_hits;
  }
  EXPECT_GT(tail_hits, 100u);  // the cold 90% still sees traffic
}

TEST(ExponentialFreqModelTest, MassFormulaMatchesSampling) {
  ExponentialFreqModel model(100000, 50.0);
  Random rng(4);
  uint64_t head_hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (model.Sample(&rng) < 10000) ++head_hits;  // top 10%
  }
  EXPECT_NEAR(static_cast<double>(head_hits) / n, model.MassOfTopFraction(0.1),
              0.01);
}

TEST(ExponentialFreqModelTest, HigherLambdaMoreSkew) {
  ExponentialFreqModel flat(100000, 1.0);
  ExponentialFreqModel steep(100000, 100.0);
  EXPECT_GT(steep.MassOfTopFraction(0.01), flat.MassOfTopFraction(0.01));
}

TEST(BatchTraceGeneratorTest, BatchesAreUniqueSorted) {
  SkewedKeySampler sampler(100000, SkewPreset::kOriginal);
  BatchTraceGenerator generator(&sampler, 4096, 9);
  auto batch = generator.NextBatch();
  EXPECT_FALSE(batch.empty());
  EXPECT_LE(batch.size(), 4096u);
  EXPECT_TRUE(std::is_sorted(batch.begin(), batch.end()));
  EXPECT_EQ(std::set<uint64_t>(batch.begin(), batch.end()).size(),
            batch.size());
}

TEST(BatchTraceGeneratorTest, SkewCompressesUniqueKeys) {
  // Duplicates collapse: a skewed batch has far fewer unique keys than
  // draws (hot entries are drawn repeatedly — the paper's "pairs").
  SkewedKeySampler sampler(1 << 20, SkewPreset::kOriginal);
  BatchTraceGenerator generator(&sampler, 8192, 10);
  auto batch = generator.NextBatch();
  EXPECT_LT(batch.size(), 8192u / 2);
}

TEST(TraceAnalyzerTest, FitRecoversLambda) {
  ExponentialFreqModel model(5000, 12.0);
  Random rng(5);
  TraceAnalyzer analyzer;
  for (int i = 0; i < 2000000; ++i) analyzer.Record(model.Sample(&rng));
  const double lambda = analyzer.FitExponentialLambda();
  // The fit runs over accessed keys only, so it recovers the decay rate up
  // to the coverage ratio; expect the right order of magnitude.
  EXPECT_GT(lambda, 6.0);
  EXPECT_LT(lambda, 20.0);
}

TEST(TraceAnalyzerTest, CountsAndShares) {
  TraceAnalyzer analyzer;
  for (int i = 0; i < 90; ++i) analyzer.Record(1);
  for (int i = 0; i < 10; ++i) analyzer.Record(i + 10);
  EXPECT_EQ(analyzer.total_accesses(), 100u);
  EXPECT_EQ(analyzer.distinct_keys(), 11u);
  // Top ~9% (1 of 11 keys) captures 90%.
  EXPECT_NEAR(analyzer.TopFractionShare(0.09), 0.90, 0.01);
}

TEST(BurstTimelineTest, PullsAndUpdatesPairUp) {
  BurstTimelineConfig config;
  config.num_batches = 2;
  config.workers = 4;
  config.requests_per_worker = 4096;
  BurstTimeline timeline = MakeBurstTimeline(config, 11);
  // Fig. 2: pull and update request totals are consistent (pairs).
  const double ratio = static_cast<double>(timeline.TotalPulls()) /
                       static_cast<double>(timeline.TotalUpdates());
  EXPECT_NEAR(ratio, 1.0, 0.05);
  // Bursty: the peak ms is much higher than the mean ms.
  uint64_t peak = 0, total = 0;
  for (uint64_t c : timeline.pull_per_ms) {
    peak = std::max(peak, c);
    total += c;
  }
  const double mean =
      static_cast<double>(total) / timeline.pull_per_ms.size();
  EXPECT_GT(static_cast<double>(peak), 4 * mean);
}

TEST(OpenLoopGeneratorTest, OfferedRateMatchesConfiguredQps) {
  OpenLoopConfig config;
  config.qps = 50000.0;
  config.keys_per_request = 8;
  config.num_keys = 10000;
  OpenLoopGenerator generator(config);
  const size_t n = 20000;
  const auto requests = generator.Take(n);
  ASSERT_EQ(requests.size(), n);
  EXPECT_EQ(generator.generated(), n);
  // Poisson arrivals with mean gap 1/qps: over 20k draws the empirical rate
  // concentrates around the configured one (std error ~1/sqrt(n) < 1%).
  const double span_s =
      static_cast<double>(requests.back().arrival_ns) / 1e9;
  const double offered = static_cast<double>(n) / span_s;
  EXPECT_NEAR(offered, config.qps, 0.05 * config.qps);
  for (const auto& request : requests) {
    EXPECT_EQ(request.keys.size(), config.keys_per_request);
    for (uint64_t key : request.keys) EXPECT_LT(key, config.num_keys);
  }
}

TEST(OpenLoopGeneratorTest, ArrivalsAreMonotoneAndSpread) {
  OpenLoopConfig config;
  config.qps = 1000.0;
  OpenLoopGenerator generator(config);
  uint64_t previous = 0;
  std::set<uint64_t> gaps;
  for (int i = 0; i < 500; ++i) {
    const auto request = generator.Next();
    EXPECT_GE(request.arrival_ns, previous);
    gaps.insert(request.arrival_ns - previous);
    previous = request.arrival_ns;
  }
  // Exponential gaps, not a fixed tick: nearly every gap is distinct.
  EXPECT_GT(gaps.size(), 450u);
}

TEST(OpenLoopGeneratorTest, DeterministicForSeed) {
  OpenLoopConfig config;
  config.qps = 10000.0;
  config.seed = 11;
  OpenLoopGenerator a(config), b(config);
  OpenLoopConfig other = config;
  other.seed = 12;
  OpenLoopGenerator c(other);
  bool diverged = false;
  for (int i = 0; i < 200; ++i) {
    const auto ra = a.Next();
    const auto rb = b.Next();
    const auto rc = c.Next();
    EXPECT_EQ(ra.arrival_ns, rb.arrival_ns) << "request " << i;
    EXPECT_EQ(ra.keys, rb.keys) << "request " << i;
    diverged = diverged || ra.arrival_ns != rc.arrival_ns;
  }
  EXPECT_TRUE(diverged);  // the seed actually matters
}

TEST(CriteoSynthTest, ShapeMatchesConfig) {
  CriteoSynthConfig config;
  CriteoSynth data(config);
  auto example = data.Next();
  EXPECT_EQ(example.dense.size(), 13u);
  EXPECT_EQ(example.cat_keys.size(), 26u);
  EXPECT_GT(data.total_keys(), 0u);
}

TEST(CriteoSynthTest, KeysAreGloballyUniquePerField) {
  CriteoSynthConfig config;
  CriteoSynth data(config);
  // Field key ranges must not overlap: two fields never share an id.
  for (int i = 0; i < 2000; ++i) {
    auto example = data.Next();
    std::set<uint64_t> distinct(example.cat_keys.begin(),
                                example.cat_keys.end());
    EXPECT_EQ(distinct.size(), example.cat_keys.size());
  }
}

TEST(CriteoSynthTest, LabelsFollowGroundTruth) {
  CriteoSynthConfig config;
  CriteoSynth data(config);
  double click_rate = 0;
  double mean_ctr = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto example = data.Next();
    click_rate += example.label;
    mean_ctr += data.GroundTruthCtr(example);
  }
  click_rate /= n;
  mean_ctr /= n;
  EXPECT_NEAR(click_rate, mean_ctr, 0.02);
  EXPECT_GT(click_rate, 0.05);
  EXPECT_LT(click_rate, 0.6);
}

TEST(CriteoSynthTest, DeterministicForSeed) {
  CriteoSynthConfig config;
  CriteoSynth a(config), b(config);
  for (int i = 0; i < 100; ++i) {
    auto ea = a.Next();
    auto eb = b.Next();
    EXPECT_EQ(ea.label, eb.label);
    EXPECT_EQ(ea.cat_keys, eb.cat_keys);
  }
}

TEST(CriteoSynthTest, CardinalitiesSpread) {
  CriteoSynthConfig config;
  CriteoSynth data(config);
  uint64_t min_card = ~0ULL, max_card = 0;
  for (uint32_t f = 0; f < config.categorical_fields; ++f) {
    min_card = std::min(min_card, data.cardinality(f));
    max_card = std::max(max_card, data.cardinality(f));
  }
  EXPECT_LT(min_card * 8, max_card);  // wide spread like the real dataset
}

}  // namespace
}  // namespace oe::workload

#!/usr/bin/env python3
"""Merge and compare bench --json records; the CI perf-regression gate.

Every bench binary run with `--json out.json` writes one record:

    {"bench": "...", "config": {...}, "metrics": {...},
     "wall_ms": 123.4, "registry": [...]}

Subcommands:

  merge  out.json in1.json in2.json ...
      Concatenates records into {"benches": [...]} (one entry per input,
      in argument order). The merged file is what CI uploads as the
      BENCH_ci.json artifact and what `compare` consumes.

  compare baseline.json current.json [--threshold 0.25] [--metrics]
      Compares wall_ms per bench between two merged files. Exits 1 if any
      bench common to both regressed by more than the threshold
      (current > baseline * (1 + threshold)). Benches present on only one
      side are reported but never fail the gate (new benches must be able
      to land before the baseline is refreshed). --metrics additionally
      prints per-metric deltas (informational only: numeric metrics are
      workload counters or host-dependent latencies, too noisy to gate).

Exit codes: 0 = OK, 1 = regression past threshold, 2 = usage/input error.
"""

import argparse
import json
import sys


def load_merged(path):
    """Returns {bench_name: record} from a merged or single-record file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    records = data["benches"] if isinstance(data, dict) and "benches" in data \
        else [data]
    by_name = {}
    for record in records:
        name = record.get("bench")
        if not name or "wall_ms" not in record:
            # A malformed record (e.g. from an older bench binary or a
            # truncated run) must not hard-fail the gate for every other
            # bench in the file: skip it with a warning. The comparison
            # then treats the bench as absent, which is never gated.
            print(f"bench_compare: warning: {path}: skipping record missing "
                  f"bench/wall_ms: {json.dumps(record)[:120]}",
                  file=sys.stderr)
            continue
        by_name[name] = record
    return by_name


def numeric_metrics(record):
    """The record's metrics entries with float-convertible values.

    Records may carry no metrics dict at all, an explicit null, or
    non-numeric values (a label string, a null from a skipped measurement).
    The informational metric rows must skip those keys instead of crashing
    on them or printing `None -> None` rows.
    """
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        return {}
    numeric = {}
    for key, value in metrics.items():
        if isinstance(value, bool):  # bool is an int subclass; not a metric
            continue
        try:
            numeric[key] = float(value)
        except (TypeError, ValueError):
            continue
    return numeric


def cmd_merge(args):
    benches = []
    for path in args.inputs:
        benches.extend(load_merged(path).values())
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump({"benches": benches}, f, indent=1)
        f.write("\n")
    print(f"merged {len(benches)} bench record(s) -> {args.output}")
    return 0


def cmd_compare(args):
    baseline = load_merged(args.baseline)
    current = load_merged(args.current)
    failures = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            # Show the measured wall time so a new bench's first CI run
            # leaves a usable number in the log — that is what gets pasted
            # into BENCH_baseline.json when the baseline is refreshed.
            cur_ms = float(current[name]["wall_ms"])
            print(f"  {name:<28} baseline=      none "
                  f"current={cur_ms:10.1f}ms           NEW (not gated; "
                  f"refresh bench/BENCH_baseline.json to start gating)")
            continue
        if name not in current:
            print(f"  {name:<28} MISSING from current run (not gated)")
            continue
        base_ms = float(baseline[name]["wall_ms"])
        cur_ms = float(current[name]["wall_ms"])
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + args.threshold:
            verdict = f"REGRESSION (> +{args.threshold:.0%})"
            failures.append(name)
        print(f"  {name:<28} baseline={base_ms:10.1f}ms "
              f"current={cur_ms:10.1f}ms  {ratio - 1.0:+7.1%}  {verdict}")
        # Tail-latency visibility row: p99/p999 metrics (the serving SLO
        # numbers) are always shown when both sides carry them, but never
        # gated — tail latencies on shared CI runners are too noisy for a
        # hard threshold, while a large sustained jump should still be
        # visible in the job log without re-running with --metrics.
        base_metrics = numeric_metrics(baseline[name])
        cur_metrics = numeric_metrics(current[name])
        for key in sorted(set(base_metrics) & set(cur_metrics)):
            if not key.startswith(("p99_", "p999_")):
                continue
            b, c = base_metrics[key], cur_metrics[key]
            delta = (c / b - 1.0) if b else float("inf")
            print(f"      tail {key:<35} {b:11.1f} -> {c:11.1f} "
                  f"({delta:+.1%}, informational)")
        if args.metrics:
            for key in sorted(set(base_metrics) & set(cur_metrics)):
                b, c = base_metrics[key], cur_metrics[key]
                delta = (c / b - 1.0) if b else float("inf")
                print(f"      {key:<40} {b:14.3f} -> {c:14.3f} ({delta:+.1%})")
    if failures:
        print(f"\nbench_compare: {len(failures)} bench(es) regressed past "
              f"+{args.threshold:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nbench_compare: no wall-time regression past "
          f"+{args.threshold:.0%}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    merge = sub.add_parser("merge", help="merge bench records into one file")
    merge.add_argument("output")
    merge.add_argument("inputs", nargs="+")
    merge.set_defaults(func=cmd_merge)

    compare = sub.add_parser("compare", help="gate current vs baseline")
    compare.add_argument("baseline")
    compare.add_argument("current")
    compare.add_argument("--threshold", type=float, default=0.25,
                         help="allowed fractional wall-time growth "
                              "(default 0.25 = +25%%)")
    compare.add_argument("--metrics", action="store_true",
                         help="also print per-metric deltas (informational)")
    compare.set_defaults(func=cmd_compare)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()

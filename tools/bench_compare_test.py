#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py (run directly; CI runs it in the
bench-smoke job). Covers the merge/compare plumbing and the robustness of
the informational metric rows against records with absent, null, or
non-numeric metrics — those must be skipped, never crash the gate or print
`None` rows."""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest
import unittest.mock

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def write_merged(path, records):
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"benches": records}, f)


def record(name, wall_ms, metrics="absent"):
    r = {"bench": name, "wall_ms": wall_ms}
    if metrics != "absent":
        r["metrics"] = metrics
    return r


class NumericMetricsTest(unittest.TestCase):
    def test_absent_null_and_nondict_metrics_yield_empty(self):
        self.assertEqual(bench_compare.numeric_metrics({}), {})
        self.assertEqual(bench_compare.numeric_metrics({"metrics": None}), {})
        self.assertEqual(
            bench_compare.numeric_metrics({"metrics": [1, 2]}), {})

    def test_non_numeric_values_are_skipped(self):
        got = bench_compare.numeric_metrics({"metrics": {
            "p99_us": 12.5,
            "count": 7,
            "as_string": "41.5",
            "p999_us": None,
            "label": "fast-mode",
            "flag": True,
        }})
        self.assertEqual(got,
                         {"p99_us": 12.5, "count": 7.0, "as_string": 41.5})


class CompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name):
        return os.path.join(self.dir.name, name)

    def run_compare(self, base_records, cur_records, threshold=0.25,
                    metrics=False):
        write_merged(self.path("base.json"), base_records)
        write_merged(self.path("cur.json"), cur_records)
        argv = ["bench_compare", "compare", self.path("base.json"),
                self.path("cur.json"), "--threshold", str(threshold)]
        if metrics:
            argv.append("--metrics")
        out = io.StringIO()
        with unittest.mock.patch.object(sys, "argv", argv), \
                contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(out), \
                self.assertRaises(SystemExit) as ctx:
            bench_compare.main()
        return ctx.exception.code, out.getvalue()

    def test_regression_past_threshold_fails(self):
        code, out = self.run_compare([record("a", 100.0)],
                                     [record("a", 130.0)])
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_within_threshold_and_new_bench_pass(self):
        code, out = self.run_compare(
            [record("a", 100.0)],
            [record("a", 110.0), record("brand_new", 5.0)])
        self.assertEqual(code, 0)
        self.assertIn("NEW (not gated", out)

    def test_null_metrics_do_not_crash_or_print_none(self):
        # Both sides gate-clean, one side has metrics: null, the other a
        # dict with a null tail value — neither may crash the comparison
        # or surface a None row.
        code, out = self.run_compare(
            [record("a", 100.0, metrics=None)],
            [record("a", 100.0, metrics={"p99_pull_us": None})],
            metrics=True)
        self.assertEqual(code, 0)
        self.assertNotIn("None", out)

    def test_tail_rows_skip_keys_absent_on_either_side(self):
        code, out = self.run_compare(
            [record("a", 100.0,
                    metrics={"p99_pull_us": 10.0, "p999_pull_us": 20.0})],
            [record("a", 100.0, metrics={"p99_pull_us": 12.0})])
        self.assertEqual(code, 0)
        self.assertIn("tail p99_pull_us", out)
        self.assertNotIn("p999_pull_us", out)  # absent on one side: skipped

    def test_merge_then_compare_round_trip(self):
        write_merged(self.path("one.json"), [record("a", 10.0)])
        write_merged(self.path("two.json"), [record("b", 20.0)])
        argv = ["bench_compare", "merge", self.path("merged.json"),
                self.path("one.json"), self.path("two.json")]
        with unittest.mock.patch.object(sys, "argv", argv), \
                contextlib.redirect_stdout(io.StringIO()), \
                self.assertRaises(SystemExit) as ctx:
            bench_compare.main()
        self.assertEqual(ctx.exception.code, 0)
        merged = bench_compare.load_merged(self.path("merged.json"))
        self.assertEqual(sorted(merged), ["a", "b"])


if __name__ == "__main__":
    unittest.main()
